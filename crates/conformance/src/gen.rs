//! Seeded property-based tensor corpus for the differential runner.
//!
//! Every case is deterministic in the corpus seed, so a failing case name
//! is a complete reproduction recipe. The corpus deliberately spans the
//! structural regimes the kernels branch on:
//!
//! * **hyperslice-skewed** — Zipf slice populations (the ScalFrag paper's
//!   motivating imbalance; stresses BCSF's heavy/light split and the tiled
//!   kernel's open-row flushes);
//! * **fiber-skewed** — skew concentrated on a non-leading mode, so the
//!   sorted order for mode 0 interleaves hot fibers;
//! * **degenerate** — empty tensor, single non-zero, duplicate
//!   coordinates, every non-zero in one slice, rank 1;
//! * **dense-ish** — nnz comparable to the index-space volume, exercising
//!   block formats (HiCOO) at high occupancy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scalfrag_tensor::{gen, CooTensor};

/// One named, seeded conformance case.
pub struct TensorCase {
    /// Stable human-readable identifier (includes the structural family).
    pub name: String,
    /// The tensor under test.
    pub tensor: CooTensor,
    /// CPD rank to run at.
    pub rank: usize,
}

impl TensorCase {
    fn new(name: impl Into<String>, tensor: CooTensor, rank: usize) -> Self {
        Self { name: name.into(), tensor, rank }
    }
}

fn duplicate_heavy(dims: &[u32], nnz: usize, seed: u64) -> CooTensor {
    // Roughly half the entries are duplicates of earlier coordinates —
    // exercises multi-entry accumulation into single output words.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims);
    let mut coords: Vec<Vec<u32>> = Vec::new();
    for _ in 0..nnz {
        let c: Vec<u32> = if !coords.is_empty() && rng.gen::<f32>() < 0.5 {
            coords[rng.gen_range(0..coords.len())].clone()
        } else {
            dims.iter().map(|&d| rng.gen_range(0..d)).collect()
        };
        let v = rng.gen::<f32>() * 0.999 + 1e-3;
        t.push(&c, v);
        coords.push(c);
    }
    t
}

fn one_fiber_heavy(dims: &[u32], nnz: usize, seed: u64) -> CooTensor {
    // 60 % of the entries share one (non-mode-0) coordinate tuple: a
    // single mode-0 fiber holds more than half the tensor. This is the
    // worst case for fiber-parallel kernels and the motivating shape for
    // the balanced segmented scan, whose fixed-nnz chunks ignore it.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims);
    let hot: Vec<u32> = dims[1..].iter().map(|&d| rng.gen_range(0..d)).collect();
    for i in 0..nnz {
        let v = rng.gen::<f32>() * 0.999 + 1e-3;
        if i * 5 < nnz * 3 {
            let mut c = vec![rng.gen_range(0..dims[0])];
            c.extend(&hot);
            t.push(&c, v);
        } else {
            let c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
            t.push(&c, v);
        }
    }
    t
}

fn dense_slice_among_empty(dims: &[u32], seed: u64) -> CooTensor {
    // One fully dense mode-0 slice; every other slice empty. Maximal slice
    // imbalance with zero entries anywhere else — the BCSF split and the
    // chunked layout must both handle a tensor that is one giant run.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims);
    let slice = dims[0] / 2;
    for j in 0..dims[1] {
        for k in 0..dims[2] {
            t.push(&[slice, j, k], rng.gen::<f32>() * 0.999 + 1e-3);
        }
    }
    t
}

fn one_slice(dims: &[u32], nnz: usize, seed: u64) -> CooTensor {
    // Every non-zero in slice 0 of mode 0: the most contended output row
    // possible, and the single-heavy-slice extreme of the BCSF split.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims);
    for _ in 0..nnz {
        let mut c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
        c[0] = 0;
        t.push(&c, rng.gen::<f32>() * 0.999 + 1e-3);
    }
    t
}

/// The fast subset used by `conformance --smoke` in CI: one case per
/// structural family, small enough to run every backend in seconds.
pub fn smoke_corpus(seed: u64) -> Vec<TensorCase> {
    vec![
        TensorCase::new("smoke/uniform", gen::uniform(&[48, 40, 32], 3_000, seed), 8),
        TensorCase::new(
            "smoke/hyperslice-skew",
            gen::zipf_slices(&[64, 32, 24], 4_000, 1.2, seed ^ 1),
            8,
        ),
        TensorCase::new("smoke/duplicates", duplicate_heavy(&[16, 16, 16], 600, seed ^ 2), 4),
        TensorCase::new("smoke/empty", CooTensor::new(&[8, 8, 8]), 4),
        TensorCase::new("smoke/one-slice", one_slice(&[24, 16, 16], 800, seed ^ 3), 4),
        TensorCase::new("smoke/rank-1", gen::uniform(&[32, 24, 16], 1_500, seed ^ 4), 1),
    ]
}

/// The full corpus (≥ 20 cases) used by the integration suite.
pub fn corpus(seed: u64) -> Vec<TensorCase> {
    let mut cases = Vec::new();

    // Hyperslice-skewed: Zipf over mode-0 slices at increasing skew.
    for (i, skew) in [0.5f64, 0.9, 1.2, 1.6].iter().enumerate() {
        cases.push(TensorCase::new(
            format!("zipf-s{skew}"),
            gen::zipf_slices(&[96, 64, 48], 6_000, *skew, seed + i as u64),
            8,
        ));
    }

    // Fiber-skewed: skew lives on a trailing mode; permute dims so the
    // hot mode is not the one the runner sorts by.
    for (i, skew) in [0.9f64, 1.4].iter().enumerate() {
        cases.push(TensorCase::new(
            format!("fiber-skew-s{skew}"),
            gen::zipf_slices(&[40, 120, 36], 5_000, *skew, seed + 10 + i as u64),
            8,
        ));
    }

    // Uniform at a few shapes/ranks, including non-power-of-two rank.
    for (i, (dims, nnz, rank)) in [
        ([64u32, 64, 64], 4_000usize, 8usize),
        ([128, 32, 16], 3_000, 16),
        ([30, 30, 30], 2_000, 7),
        ([200, 10, 10], 2_500, 4),
    ]
    .iter()
    .enumerate()
    {
        cases.push(TensorCase::new(
            format!("uniform-{}x{}x{}-r{rank}", dims[0], dims[1], dims[2]),
            gen::uniform(dims, *nnz, seed + 20 + i as u64),
            *rank,
        ));
    }

    // Dense-ish: nnz close to the full index-space volume.
    cases.push(TensorCase::new("dense-ish", gen::uniform(&[12, 12, 12], 1_400, seed + 30), 8));

    // Blocked structure for HiCOO's happy path.
    cases.push(TensorCase::new("blocked", gen::blocked(&[64, 64, 64], 4_000, 24, 8, seed + 31), 8));

    // Duplicate-coordinate accumulation at two densities.
    cases.push(TensorCase::new("dup-light", duplicate_heavy(&[32, 32, 32], 1_200, seed + 32), 8));
    cases.push(TensorCase::new("dup-heavy", duplicate_heavy(&[8, 8, 8], 800, seed + 33), 4));

    // Degenerate family.
    cases.push(TensorCase::new("empty", CooTensor::new(&[16, 16, 16]), 8));
    cases.push(TensorCase::new(
        "single-nnz",
        CooTensor::from_entries(&[16, 16, 16], &[(vec![3, 5, 7], 0.625)]),
        8,
    ));
    cases.push(TensorCase::new("one-slice", one_slice(&[48, 24, 24], 2_000, seed + 34), 8));
    cases.push(TensorCase::new(
        "one-fiber-heavy",
        one_fiber_heavy(&[40, 32, 24], 3_000, seed + 40),
        8,
    ));
    cases.push(TensorCase::new(
        "dense-slice-among-empty",
        dense_slice_among_empty(&[64, 24, 20], seed + 41),
        8,
    ));
    cases.push(TensorCase::new("rank-1", gen::uniform(&[48, 32, 24], 2_500, seed + 35), 1));
    cases.push(TensorCase::new("tiny-dims", gen::uniform(&[2, 2, 2], 6, seed + 36), 3));

    // Empty *slices*: large leading dim with few nnz leaves most slices
    // empty without the whole tensor being empty.
    cases.push(TensorCase::new("sparse-slices", gen::uniform(&[512, 8, 8], 300, seed + 37), 4));

    // A 4-way tensor: the kernels are order-generic; prove it.
    cases.push(TensorCase::new("four-way", gen::uniform(&[24, 20, 16, 12], 3_000, seed + 38), 6));

    assert!(cases.len() >= 20, "corpus shrank below the contract");
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_faults::tensor_checksum;

    #[test]
    fn corpus_is_seed_deterministic() {
        let a = corpus(7);
        let b = corpus(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(tensor_checksum(&x.tensor), tensor_checksum(&y.tensor));
        }
    }

    #[test]
    fn corpus_has_the_contracted_families() {
        let names: Vec<String> = corpus(1).into_iter().map(|c| c.name).collect();
        for needle in [
            "zipf",
            "dup",
            "empty",
            "one-slice",
            "one-fiber-heavy",
            "dense-slice-among-empty",
            "rank-1",
            "four-way",
        ] {
            assert!(names.iter().any(|n| n.contains(needle)), "missing family {needle}");
        }
        assert!(names.len() >= 20);
    }

    #[test]
    fn degenerate_cases_have_expected_shape() {
        let cases = corpus(3);
        let empty = cases.iter().find(|c| c.name == "empty").unwrap();
        assert_eq!(empty.tensor.nnz(), 0);
        let one = cases.iter().find(|c| c.name == "one-slice").unwrap();
        assert!(one.tensor.mode_indices(0).iter().all(|&i| i == 0));
        let r1 = cases.iter().find(|c| c.name == "rank-1").unwrap();
        assert_eq!(r1.rank, 1);
    }

    #[test]
    fn heavy_skew_cases_have_the_advertised_shape() {
        let cases = corpus(11);
        let fiber = cases.iter().find(|c| c.name == "one-fiber-heavy").unwrap();
        let counts = fiber.tensor.fiber_nnz_counts(0);
        let max = *counts.iter().max().unwrap() as usize;
        assert!(
            max * 2 > fiber.tensor.nnz(),
            "one fiber must hold >50% of nnz (max {max} of {})",
            fiber.tensor.nnz()
        );
        let dense = cases.iter().find(|c| c.name == "dense-slice-among-empty").unwrap();
        let rows = dense.tensor.mode_indices(0);
        assert!(rows.iter().all(|&i| i == rows[0]), "exactly one populated slice");
        assert_eq!(dense.tensor.nnz(), 24 * 20, "that slice is fully dense");
    }

    /// The satellite contract: the ULP budget formula (`16 + 4·max row
    /// terms`) must still cover the heavy-skew cases for every kernel
    /// backend — a dense slice concentrates thousands of terms into one
    /// output row, and the budget must scale with it, not drown in it.
    #[test]
    fn ulp_budget_covers_the_heavy_skew_cases() {
        let cases: Vec<TensorCase> = corpus(13)
            .into_iter()
            .filter(|c| c.name == "one-fiber-heavy" || c.name == "dense-slice-among-empty")
            .collect();
        assert_eq!(cases.len(), 2);
        let report =
            crate::differential::run_differential(&crate::backends::kernel_backends(), &cases, 13);
        assert!(report.all_pass(), "{}", report.table());
    }
}
