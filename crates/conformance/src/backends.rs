//! The backends the differential runner drives against the oracle.
//!
//! Two registries, matching the two layers a divergence can hide in:
//!
//! * [`kernel_backends`] — the raw kernel formats (COO atomic, ScalFrag
//!   tiled, CSF fiber, BCSF heavy/light, HiCOO block, the F-COO segmented
//!   reduction, the load-balanced segmented scan over fixed-nnz chunks and
//!   the FLYCOO mode-agnostic remap kernel). Each runner owns its format
//!   conversion and preprocessing (mode sort, block build, remap build), so
//!   a conversion bug is attributed to the format that performed it.
//! * [`path_backends`] — full execution paths: the ParTI baseline facade,
//!   ScalFrag single-GPU (sync and pipelined+hybrid), ClusterScalFrag
//!   across scheduler/shard-policy combos and device counts, the serving
//!   layer in functional mode, and the resilient cluster path with
//!   injected-and-recovered faults. These exercise segmentation, sharding,
//!   reduction and recovery on top of the same kernels.
//!
//! Every runner returns the dense `rows × rank` MTTKRP output as a `Mat`.

use std::sync::Arc;

use scalfrag_balance::{BalancedKernel, FlycooKernel, CHUNK_LEN, FLYCOO_SEG_LEN};
use scalfrag_cluster::{DeviceScheduler, FaultRecoveryPolicy, NodeSpec, ShardPolicy};
use scalfrag_core::{ClusterScalFrag, Parti, ScalFrag};
use scalfrag_exec::PlanBuilder;
use scalfrag_faults::{FaultInjector, FaultKind, FaultPlan, FaultTrigger};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::{
    AtomicF32Buffer, BcsfKernel, CooAtomicKernel, CsfFiberKernel, FCooKernel, FactorSet,
    HiCooKernel, TiledKernel,
};
use scalfrag_linalg::Mat;
use scalfrag_serve::{MttkrpJob, ScalFragServer};
use scalfrag_tensor::{ChunkedTensor, CooTensor, CsfTensor, FCooTensor, FlycooTensor, HiCooTensor};

/// A named way of computing MTTKRP.
pub struct Backend {
    /// Stable identifier printed in the PASS/FAIL table.
    pub name: &'static str,
    /// Computes `Y = X_(mode) (⊙ factors)`.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(&CooTensor, &FactorSet, usize) -> Mat + Send + Sync>,
}

impl Backend {
    fn new(
        name: &'static str,
        run: impl Fn(&CooTensor, &FactorSet, usize) -> Mat + Send + Sync + 'static,
    ) -> Self {
        Self { name, run: Box::new(run) }
    }
}

fn out_buffer(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> AtomicF32Buffer {
    AtomicF32Buffer::new(tensor.dims()[mode] as usize * factors.rank())
}

fn into_mat(buf: AtomicF32Buffer, rows: usize, rank: usize) -> Mat {
    Mat::from_vec(rows, rank, buf.to_vec())
}

fn sorted_for(tensor: &CooTensor, mode: usize) -> CooTensor {
    let mut t = tensor.clone();
    t.sort_for_mode(mode);
    t
}

/// The five kernel formats (plus F-COO) as raw-format backends.
pub fn kernel_backends() -> Vec<Backend> {
    vec![
        Backend::new(CooAtomicKernel::NAME, |t, f, mode| {
            let out = out_buffer(t, f, mode);
            CooAtomicKernel::execute(t, f, mode, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(TiledKernel::NAME, |t, f, mode| {
            let seg = sorted_for(t, mode);
            let out = out_buffer(t, f, mode);
            TiledKernel::execute(&seg, f, mode, 256, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(CsfFiberKernel::NAME, |t, f, mode| {
            let csf = CsfTensor::from_coo(t, mode);
            let out = out_buffer(t, f, mode);
            CsfFiberKernel::execute(&csf, f, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(BcsfKernel::NAME, |t, f, mode| {
            let seg = sorted_for(t, mode);
            let split = BcsfKernel::split(&seg, mode, 64);
            let out = out_buffer(t, f, mode);
            BcsfKernel::execute(&seg, f, mode, &split, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(HiCooKernel::NAME, |t, f, mode| {
            let hicoo = HiCooTensor::from_coo(t, 3);
            let out = out_buffer(t, f, mode);
            HiCooKernel::execute(&hicoo, f, mode, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(FCooKernel::NAME, |t, f, mode| {
            let fcoo = FCooTensor::from_coo(t, mode, 128);
            let out = out_buffer(t, f, mode);
            FCooKernel::execute(&fcoo, f, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(BalancedKernel::NAME, |t, f, mode| {
            let chunked = ChunkedTensor::from_coo(t, mode, CHUNK_LEN);
            let out = out_buffer(t, f, mode);
            BalancedKernel::execute(&chunked, f, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
        Backend::new(FlycooKernel::NAME, |t, f, mode| {
            let fly = FlycooTensor::from_coo(t, FLYCOO_SEG_LEN);
            let out = out_buffer(t, f, mode);
            FlycooKernel::execute(&fly, f, mode, &out);
            into_mat(out, t.dims()[mode] as usize, f.rank())
        }),
    ]
}

const CFG: LaunchConfig = LaunchConfig { grid: 512, block: 256, shared_mem_per_block: 0 };

fn node(n: usize) -> NodeSpec {
    NodeSpec::homogeneous(DeviceSpec::rtx3090(), n)
}

/// The end-to-end execution paths. Heavier than [`kernel_backends`] —
/// the runner drives them over a corpus subset.
pub fn path_backends() -> Vec<Backend> {
    vec![
        Backend::new("path:parti", |t, f, mode| Parti::rtx3090().mttkrp(t, f, mode).output),
        Backend::new("path:scalfrag-sync", |t, f, mode| {
            let ctx = ScalFrag::builder().fixed_config(CFG).pipelined(false).build();
            ctx.mttkrp(t, f, mode).output
        }),
        Backend::new("path:scalfrag-pipelined", |t, f, mode| {
            let ctx = ScalFrag::builder().fixed_config(CFG).segments(4).hybrid(true).build();
            ctx.mttkrp(t, f, mode).output
        }),
        Backend::new("path:cluster-rr-nnz", |t, f, mode| {
            let ctx = ClusterScalFrag::builder()
                .node(node(2))
                .fixed_config(CFG)
                .shards(4)
                .scheduler(DeviceScheduler::RoundRobin)
                .shard_policy(ShardPolicy::NnzBalanced)
                .build();
            ctx.mttkrp(t, f, mode).output
        }),
        Backend::new("path:cluster-lpt-slice", |t, f, mode| {
            let ctx = ClusterScalFrag::builder()
                .node(node(3))
                .fixed_config(CFG)
                .shards(6)
                .scheduler(DeviceScheduler::Lpt)
                .shard_policy(ShardPolicy::SliceAligned)
                .build();
            ctx.mttkrp(t, f, mode).output
        }),
        Backend::new("path:serve-functional", |t, f, mode| {
            let server = ScalFragServer::builder()
                .device(DeviceSpec::rtx3090())
                .functional(true)
                .train_tiers(vec![f.rank()])
                .build();
            let job =
                MttkrpJob::new(1, "conformance", Arc::new(t.clone()), Arc::new(f.clone()), mode);
            let report = server.run(vec![job]);
            report
                .completed
                .first()
                .and_then(|r| r.output.clone())
                .expect("functional serve run must yield the job output")
        }),
        Backend::new("path:oom-stream", |t, f, mode| {
            // The streaming path under the registry budget: the tensor is
            // cut so it must actually stream (evictions included), and
            // the interpreter runs the functional kernels through the
            // same Prefetch/Evict op program dry runs fingerprint.
            let plan = scalfrag_oom::registry_plan(t, f, mode);
            scalfrag_exec::run_plan(&plan, scalfrag_exec::ExecMode::Functional).output
        }),
        Backend::new("path:balance-segscan", |t, f, mode| {
            let ctx = ScalFrag::builder()
                .fixed_config(CFG)
                .pipelined(false)
                .balanced_kernel(true)
                .build();
            ctx.mttkrp(t, f, mode).output
        }),
        Backend::new("path:balance-flycoo", |t, f, mode| {
            let ctx = ScalFrag::builder()
                .fixed_config(CFG)
                .pipelined(false)
                .mode_agnostic_kernel(true)
                .build();
            ctx.mttkrp(t, f, mode).output
        }),
        Backend::new("path:serve-batched", |t, f, mode| {
            // The batch-fused serving path: the registered builder fuses
            // three copies of the job into one plan (shared factor
            // upload, per-job launches); the differential output is the
            // LAST fused job's matrix, so the fan-out — not just the
            // group lead — must be numerically right.
            let builders = scalfrag_pipeline::batched_plan_builders();
            let plan = (builders[0].build)(t, f, mode);
            let outcome = scalfrag_exec::run_plan(&plan, scalfrag_exec::ExecMode::Functional);
            outcome.shard_outputs.last().cloned().expect("batched plan yields per-job outputs")
        }),
        Backend::new("path:cluster-resilient", |t, f, mode| {
            let ctx = ClusterScalFrag::builder().node(node(3)).fixed_config(CFG).shards(6).build();
            // Two recoverable faults, recovered in-run; the output must
            // still be conformant (no double accumulation on retry).
            let plan = FaultPlan::new()
                .fault(0, FaultTrigger::AtOp(2), FaultKind::DeviceFail { down_s: Some(1e-3) })
                .fault(1, FaultTrigger::AtOp(5), FaultKind::KernelAbort);
            let mut inj = FaultInjector::new(plan);
            let run =
                ctx.mttkrp_resilient(t, f, mode, &mut inj, &FaultRecoveryPolicy::retry_reshard());
            assert_eq!(run.failed_segments, 0, "recoverable plan must fully recover");
            run.report.output
        }),
    ]
}

/// Every ScheduleIR plan builder registered anywhere in the workspace
/// (core, pipeline, cluster, serve, oom, balance, serve-batched),
/// concatenated in crate order — later additions append, so the seed
/// builders keep their pinned fold order in the golden trace
/// fingerprints.
///
/// The coverage contract: each builder named `X` must have a
/// [`path_backends`] entry named `path:X`, so no execution path can be
/// added without joining the differential table.
pub fn all_plan_builders() -> Vec<PlanBuilder> {
    let mut v = scalfrag_core::plan_builders();
    v.extend(scalfrag_pipeline::plan_builders());
    v.extend(scalfrag_cluster::plan_builders());
    v.extend(scalfrag_serve::plan_builders());
    v.extend(scalfrag_oom::plan_builders());
    v.extend(scalfrag_pipeline::balance_plan_builders());
    v.extend(scalfrag_pipeline::batched_plan_builders());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_have_the_contracted_coverage() {
        let kernels = kernel_backends();
        assert!(kernels.len() >= 5, "five kernel formats minimum");
        let paths = path_backends();
        assert!(paths.len() >= 3, "three execution paths minimum");
        let names: Vec<_> = kernels.iter().chain(&paths).map(|b| b.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "backend names must be unique");
    }

    #[test]
    fn every_registered_plan_builder_has_a_path_backend() {
        let builders = all_plan_builders();
        assert!(builders.len() >= 6, "the workspace registers at least six plan builders");
        let paths: Vec<_> = path_backends().iter().map(|b| b.name.to_string()).collect();
        let mut builder_names: Vec<_> = builders.iter().map(|b| b.name).collect();
        let deduped = builder_names.len();
        builder_names.sort_unstable();
        builder_names.dedup();
        assert_eq!(builder_names.len(), deduped, "plan-builder names must be unique");
        for b in &builders {
            let want = format!("path:{}", b.name);
            assert!(
                paths.contains(&want),
                "plan builder `{}` has no `{want}` conformance backend — register one",
                b.name
            );
        }
    }
}
