//! The slow, obviously-correct MTTKRP reference.
//!
//! `Y[i, f] = Σ_{e : idx_mode(e) = i}  v_e · Π_{m ≠ mode} U_m[idx_m(e), f]`
//!
//! Everything here is written for auditability, not speed: one flat `f64`
//! accumulator per output element, entries visited in storage order, the
//! factor product computed freshly per (entry, rank column). `f64`
//! accumulation makes the oracle at least as accurate as any `f32` kernel,
//! so kernel-vs-oracle ULP distance is an upper bound on the kernel's own
//! rounding error — the quantity the tolerance model bounds.
//!
//! Duplicate coordinates are deliberately *not* merged: the MTTKRP sum
//! ranges over entries, so a tensor holding the same coordinate twice
//! contributes twice — the same semantics every kernel implements via
//! atomic accumulation.

use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// Computes the reference MTTKRP for `mode` with `f64` accumulation,
/// rounded to `f32` once at the end.
pub fn oracle_mttkrp(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let order = tensor.order();
    let mut acc = vec![0f64; rows * rank];
    for e in 0..tensor.nnz() {
        let row = tensor.mode_indices(mode)[e] as usize;
        let v = tensor.values()[e] as f64;
        for f in 0..rank {
            let mut term = v;
            for m in 0..order {
                if m == mode {
                    continue;
                }
                let r = tensor.mode_indices(m)[e] as usize;
                term *= factors.get(m).as_slice()[r * rank + f] as f64;
            }
            acc[row * rank + f] += term;
        }
    }
    Mat::from_vec(rows, rank, acc.into_iter().map(|x| x as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_tensor::gen;

    #[test]
    fn matches_hand_computed_single_entry() {
        let t = CooTensor::from_entries(&[2, 2, 2], &[(vec![1, 0, 1], 0.5)]);
        let f = FactorSet::random(&[2, 2, 2], 2, 3);
        let y = oracle_mttkrp(&t, &f, 0);
        for c in 0..2 {
            let expect = 0.5 * f.get(1).as_slice()[c] * f.get(2).as_slice()[2 + c];
            assert!((y.as_slice()[2 + c] - expect).abs() < 1e-6);
            assert_eq!(y.as_slice()[c], 0.0);
        }
    }

    #[test]
    fn duplicate_coordinates_accumulate() {
        let coord = vec![0u32, 1, 1];
        let once = CooTensor::from_entries(&[2, 2, 2], &[(coord.clone(), 0.25)]);
        let twice = CooTensor::from_entries(&[2, 2, 2], &[(coord.clone(), 0.25), (coord, 0.25)]);
        let f = FactorSet::random(&[2, 2, 2], 3, 9);
        let y1 = oracle_mttkrp(&once, &f, 1);
        let y2 = oracle_mttkrp(&twice, &f, 1);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn agrees_with_kernel_reference_on_random_input() {
        let t = gen::uniform(&[20, 16, 12], 500, 11);
        let f = FactorSet::random(t.dims(), 4, 12);
        let y = oracle_mttkrp(&t, &f, 0);
        let r = scalfrag_kernels::reference::mttkrp_seq(&t, &f, 0);
        let worst = crate::ulp::max_ulp(y.as_slice(), r.as_slice());
        assert!(worst.max_ulp < 1_000, "oracle vs f32 reference: {worst:?}");
    }
}
