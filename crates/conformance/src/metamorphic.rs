//! Metamorphic invariants of MTTKRP — properties the *mathematics*
//! guarantees, checked without any oracle.
//!
//! Each invariant is a reusable property over an arbitrary runner
//! `Fn(&CooTensor, &FactorSet, usize) -> Mat`, so one catalogue covers raw
//! kernels and full execution paths alike. Two exactness classes:
//!
//! * **bitwise** — transformations that commute with every `f32` rounding
//!   step: power-of-two scaling (exponent shift only), rank-column
//!   permutation (columns are computed independently), mode permutation
//!   (the entry set and per-entry products are unchanged), device-count
//!   changes under a pinned shard count (the reduction folds shards in
//!   global shard order regardless of placement).
//! * **ULP-bounded** — transformations that reorder the accumulation
//!   (nnz shuffle, segment-count changes): same multiset of terms, so the
//!   positive-sum bound from the differential tolerance model applies.
//!
//! Every property returns `Result<(), String>` with a self-contained
//! failure message, making it usable from tests and from the CLI alike.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::{CooTensor, ModePermutation};

use crate::differential::tolerance_for;
use crate::ulp::max_ulp;

/// The runner type all properties are generic over.
pub trait Runner: Fn(&CooTensor, &FactorSet, usize) -> Mat {}
impl<T: Fn(&CooTensor, &FactorSet, usize) -> Mat> Runner for T {}

fn expect_bitwise(label: &str, a: &Mat, b: &Mat) -> Result<(), String> {
    if a.as_slice().len() != b.as_slice().len() {
        return Err(format!(
            "{label}: shape mismatch {}x{} vs {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        ));
    }
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{label}: first bit difference at flat index {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

fn expect_ulp(label: &str, a: &Mat, b: &Mat, tol: u64) -> Result<(), String> {
    let worst = max_ulp(a.as_slice(), b.as_slice());
    if worst.max_ulp > tol {
        return Err(format!(
            "{label}: {} ulp at flat index {:?} exceeds budget {tol}",
            worst.max_ulp, worst.at
        ));
    }
    Ok(())
}

/// How strictly two outputs must agree.
#[derive(Clone, Copy, Debug)]
pub enum Exactness {
    /// Bit-for-bit — for transformations that commute with every rounding
    /// step (and runners that do not reorder the accumulation).
    Bitwise,
    /// Within the ULP budget — for transformations that only permute the
    /// accumulation order (e.g. a runner re-sorts entries whose tie-break
    /// order the transformation changed).
    Ulp(u64),
}

fn expect(label: &str, a: &Mat, b: &Mat, how: Exactness) -> Result<(), String> {
    match how {
        Exactness::Bitwise => expect_bitwise(label, a, b),
        Exactness::Ulp(tol) => expect_ulp(label, a, b, tol),
    }
}

/// **Mode permutation**: permuting the tensor's modes and the factor list
/// identically, then asking for the permuted image of `mode`, yields the
/// same output. Bitwise for runners that keep the entry order (the entry
/// multiset and per-entry products are untouched); ULP-bounded for runners
/// that re-sort, because sorting tie-breaks on the *relabelled* modes.
pub fn mode_permutation(
    run: impl Runner,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    perm: &ModePermutation,
    how: Exactness,
) -> Result<(), String> {
    let base = run(tensor, factors, mode);
    let permuted_tensor = perm.apply(tensor);
    let permuted_factors = FactorSet::from_mats(
        (0..factors.order()).map(|m| factors.get(perm.old_of_new(m)).clone()).collect(),
    );
    let image = run(&permuted_tensor, &permuted_factors, perm.new_of_old(mode));
    expect("mode-permutation", &base, &image, how)
}

/// **Slice/nnz shuffle** (ULP-bounded): reordering the entry storage
/// changes only the accumulation order.
pub fn nnz_shuffle(
    run: impl Runner,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    seed: u64,
) -> Result<(), String> {
    let base = run(tensor, factors, mode);
    let shuffled = shuffle_entries(tensor, seed);
    let again = run(&shuffled, factors, mode);
    expect_ulp("nnz-shuffle", &base, &again, tolerance_for(tensor, mode))
}

/// **Factor scaling linearity** (bitwise for powers of two): scaling one
/// non-target factor by `2^k` scales the output by exactly `2^k`.
pub fn factor_scaling(
    run: impl Runner,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    k: i32,
) -> Result<(), String> {
    let other = (mode + 1) % factors.order();
    let s = (2f32).powi(k);
    let mut base = run(tensor, factors, mode);
    let mut scaled_factors = factors.clone();
    scaled_factors.get_mut(other).scale(s);
    let scaled = run(tensor, &scaled_factors, mode);
    base.scale(s);
    expect_bitwise("factor-scaling", &base, &scaled)
}

/// **Rank-column permutation** (bitwise): permuting the columns of every
/// factor permutes the output columns the same way — each rank column is
/// an independent computation.
pub fn rank_column_permutation(
    run: impl Runner,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    seed: u64,
) -> Result<(), String> {
    let rank = factors.rank();
    let mut cols: Vec<usize> = (0..rank).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..cols.len()).rev() {
        cols.swap(i, rng.gen_range(0..=i));
    }
    let permute_cols =
        |m: &Mat| Mat::from_fn(m.rows(), m.cols(), |r, c| m.as_slice()[r * rank + cols[c]]);
    let base = run(tensor, factors, mode);
    let permuted_factors =
        FactorSet::from_mats((0..factors.order()).map(|m| permute_cols(factors.get(m))).collect());
    let image = run(tensor, &permuted_factors, mode);
    expect_bitwise("rank-column-permutation", &permute_cols(&base), &image)
}

/// **Segment-count invariance** (ULP-bounded): a runner parameterised by a
/// segment/partition count must agree with itself across counts.
pub fn segment_count_invariance(
    run_with_segments: impl Fn(&CooTensor, &FactorSet, usize, usize) -> Mat,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    counts: &[usize],
) -> Result<(), String> {
    let base = run_with_segments(tensor, factors, mode, counts[0]);
    for &n in &counts[1..] {
        let other = run_with_segments(tensor, factors, mode, n);
        expect_ulp(
            &format!("segment-count ({} vs {n})", counts[0]),
            &base,
            &other,
            tolerance_for(tensor, mode),
        )?;
    }
    Ok(())
}

/// **Device-count invariance** (bitwise): a runner parameterised by a
/// device count must produce identical bits across counts, provided the
/// shard count is pinned (the reduction folds in shard order).
pub fn device_count_invariance(
    run_with_devices: impl Fn(&CooTensor, &FactorSet, usize, usize) -> Mat,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    counts: &[usize],
) -> Result<(), String> {
    let base = run_with_devices(tensor, factors, mode, counts[0]);
    for &n in &counts[1..] {
        let other = run_with_devices(tensor, factors, mode, n);
        expect_bitwise(&format!("device-count ({} vs {n})", counts[0]), &base, &other)?;
    }
    Ok(())
}

/// Deterministic Fisher–Yates over the entry storage order.
pub fn shuffle_entries(tensor: &CooTensor, seed: u64) -> CooTensor {
    let n = tensor.nnz();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut out = CooTensor::new(tensor.dims());
    let m = tensor.order();
    for &e in &order {
        let coord: Vec<u32> = (0..m).map(|d| tensor.mode_indices(d)[e]).collect();
        out.push(&coord, tensor.values()[e]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_mttkrp;
    use scalfrag_tensor::gen;

    fn setup() -> (CooTensor, FactorSet) {
        let t = gen::zipf_slices(&[32, 24, 20], 2_000, 1.0, 21);
        let f = FactorSet::random(t.dims(), 8, 22);
        (t, f)
    }

    #[test]
    fn oracle_satisfies_every_invariant() {
        let (t, f) = setup();
        let run = |t: &CooTensor, f: &FactorSet, m: usize| oracle_mttkrp(t, f, m);
        let perm = ModePermutation::new(vec![2, 0, 1]);
        mode_permutation(run, &t, &f, 0, &perm, Exactness::Bitwise).unwrap();
        nnz_shuffle(run, &t, &f, 0, 77).unwrap();
        factor_scaling(run, &t, &f, 0, 3).unwrap();
        factor_scaling(run, &t, &f, 1, -2).unwrap();
        rank_column_permutation(run, &t, &f, 0, 78).unwrap();
    }

    #[test]
    fn a_biased_runner_fails_scaling() {
        let (t, f) = setup();
        // Adding a constant breaks linearity — the catalogue must notice.
        let biased = |t: &CooTensor, f: &FactorSet, m: usize| {
            let mut y = oracle_mttkrp(t, f, m);
            for v in y.as_mut_slice() {
                *v += 1.0;
            }
            y
        };
        assert!(factor_scaling(biased, &t, &f, 0, 1).is_err());
    }

    #[test]
    fn shuffle_preserves_the_multiset() {
        let (t, _) = setup();
        let s = shuffle_entries(&t, 5);
        assert_eq!(t.nnz(), s.nnz());
        let sum: f64 = t.values().iter().map(|&v| v as f64).sum();
        let sum_s: f64 = s.values().iter().map(|&v| v as f64).sum();
        assert!((sum - sum_s).abs() < 1e-6);
        assert_ne!(
            t.mode_indices(0),
            s.mode_indices(0),
            "2000 entries should not survive a shuffle in place"
        );
    }
}
