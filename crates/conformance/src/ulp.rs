//! ULP (units-in-the-last-place) distance between `f32` values.
//!
//! The differential oracle accumulates in `f64` while the kernels
//! accumulate in `f32`, so exact equality is the wrong bar; an absolute
//! epsilon is equally wrong because output magnitudes span orders of
//! magnitude across slices. ULP distance is scale-free: it counts how many
//! representable floats sit between two values, which is exactly the
//! quantity rounding-error analysis bounds.

/// Maps an `f32` onto a signed integer such that the integer order matches
/// the numeric order and adjacent representable floats map to adjacent
/// integers. Both zeros map to 0.
fn order_key(x: f32) -> i64 {
    let i = x.to_bits() as i32;
    if i >= 0 {
        i as i64
    } else {
        // Negative floats: larger bit pattern = more negative. Reflect so
        // -0.0 lands on 0 and the scale stays monotone.
        i64::from(i32::MIN) - i as i64
    }
}

/// ULP distance between two finite `f32` values. NaN or infinity on either
/// side yields `u64::MAX` (always a divergence).
pub fn ulp_diff(a: f32, b: f32) -> u64 {
    if !a.is_finite() || !b.is_finite() {
        return if a == b || (a.is_nan() && b.is_nan()) { 0 } else { u64::MAX };
    }
    (order_key(a) - order_key(b)).unsigned_abs()
}

/// The worst element of a pairwise comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UlpExtremum {
    /// Largest ULP distance seen.
    pub max_ulp: u64,
    /// Flat index of the first element attaining `max_ulp` (None when the
    /// slices are empty or identical).
    pub at: Option<usize>,
}

/// Scans two equal-length slices and reports the largest ULP distance and
/// where it first occurs. Panics on length mismatch — shape disagreement is
/// a conformance failure in itself and callers check it explicitly first.
pub fn max_ulp(expected: &[f32], actual: &[f32]) -> UlpExtremum {
    assert_eq!(expected.len(), actual.len(), "shape mismatch");
    let mut worst = UlpExtremum::default();
    for (i, (&e, &a)) in expected.iter().zip(actual).enumerate() {
        let d = ulp_diff(e, a);
        if d > worst.max_ulp {
            worst = UlpExtremum { max_ulp: d, at: Some(i) };
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_and_zero_signs() {
        assert_eq!(ulp_diff(1.5, 1.5), 0);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_floats_are_one_ulp() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_diff(a, b), 1);
        let n = -1.0f32;
        let m = f32::from_bits(n.to_bits() + 1); // one step more negative
        assert_eq!(ulp_diff(n, m), 1);
    }

    #[test]
    fn crossing_zero_counts_both_sides() {
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_diff(tiny, -tiny), 2);
    }

    #[test]
    fn non_finite_is_max() {
        assert_eq!(ulp_diff(f32::NAN, 1.0), u64::MAX);
        assert_eq!(ulp_diff(f32::INFINITY, 1.0), u64::MAX);
        assert_eq!(ulp_diff(f32::NAN, f32::NAN), 0);
    }

    #[test]
    fn max_ulp_finds_first_worst() {
        let e = [1.0f32, 2.0, 3.0];
        let a = [1.0f32, f32::from_bits(2.0f32.to_bits() + 3), 3.0];
        let w = max_ulp(&e, &a);
        assert_eq!(w.max_ulp, 3);
        assert_eq!(w.at, Some(1));
    }
}
