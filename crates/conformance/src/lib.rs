//! # scalfrag-conformance
//!
//! The conformance harness (DESIGN.md §10): one place that answers *"do
//! all the ways this repo computes MTTKRP agree, and would their writes be
//! legal on real hardware?"*
//!
//! Three pillars:
//!
//! * **Differential oracle** — [`oracle::oracle_mttkrp`] is the slow,
//!   obviously-correct `f64`-accumulating reference; [`gen`] produces a
//!   seeded corpus spanning hyperslice-skew, fiber-skew, degenerate and
//!   dense-ish regimes; [`differential::run_differential`] executes every
//!   registered backend ([`backends`]: the five kernel formats + F-COO,
//!   and the ParTI/ScalFrag/cluster/serve/resilient execution paths)
//!   against the oracle under a per-case ULP budget, yielding a
//!   [`differential::ConformanceReport`] with per-backend max-ULP and
//!   first-divergence coordinates.
//!   [`differential::run_differential_parallel`] fans the (case, mode)
//!   units out across the `scalfrag-host` work-stealing pool and folds
//!   verdict fragments in submission order — same report, real cores.
//! * **Metamorphic suite** — [`metamorphic`] is a catalogue of reusable
//!   invariants the mathematics guarantees (mode permutation, nnz shuffle,
//!   power-of-two factor scaling, rank-column permutation, segment-count
//!   and device-count invariance), each applicable to any runner.
//! * **Race checking** — [`race`] drives the gpusim simulated-race checker
//!   over every kernel's write trace and gates CI on a self-test: the
//!   deliberately-racy mutant must be caught, the shipped kernels must be
//!   clean.

pub mod backends;
pub mod differential;
pub mod gen;
pub mod golden;
pub mod metamorphic;
pub mod oracle;
pub mod race;
pub mod ulp;

pub use backends::{all_plan_builders, kernel_backends, path_backends, Backend};
pub use differential::{
    run_differential, run_differential_parallel, tolerance_for, BackendVerdict, ConformanceReport,
    Divergence,
};
pub use gen::{corpus, smoke_corpus, TensorCase};
pub use golden::{combined_plan_fingerprint, print_or_assert};
pub use metamorphic::Exactness;
pub use oracle::oracle_mttkrp;
pub use race::{check_all_kernels, self_test as race_self_test, RaceVerdict};
pub use ulp::{max_ulp, ulp_diff, UlpExtremum};
