//! Golden-pin plumbing shared by the fingerprint tests and benchmark
//! gates: the `PRINT_FINGERPRINTS=1` re-pin flow and the combined
//! builder-sweep trace digest.
//!
//! A golden pin is a constant in a test; when a *toolchain* change (and
//! nothing else) legitimately shifts a SipHash-family digest, the test
//! is re-run with `PRINT_FINGERPRINTS=1`, which prints the new value
//! instead of asserting, and the constant is updated by hand. Every
//! pinned digest in the repo goes through [`print_or_assert`] so the
//! flow (and its failure message) is identical everywhere.

use crate::backends::all_plan_builders;
use scalfrag_exec::{run_plan, ExecMode, Plan};
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::CooTensor;

/// Asserts `got == golden`, or — when `PRINT_FINGERPRINTS` is set in
/// the environment — prints `label: 0x…` instead, so a legitimate
/// toolchain shift can be re-pinned in one run.
pub fn print_or_assert(label: &str, got: u64, golden: u64) {
    if std::env::var("PRINT_FINGERPRINTS").is_ok() {
        println!("{label}: 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, golden,
        "{label} drifted: got 0x{got:016x}, pinned 0x{golden:016x} — a seeded run is no longer \
         deterministic (or a rustc upgrade moved DefaultHasher; re-pin with PRINT_FINGERPRINTS=1 \
         if, and only if, nothing but the toolchain changed)"
    );
}

/// One digest over every registered plan builder that passes `filter`:
/// each builder's plan is transformed by `transform` (identity for the
/// raw pins, an optimizer pipeline for the optimized pins), dry-run,
/// and its name + [`trace
/// fingerprint`](scalfrag_exec::PlanTrace::fingerprint) FNV-1a-folded
/// into the running hash. Builders fold in registration order, so the
/// digest also pins the registry order.
///
/// # Panics
/// Panics if any selected builder emits an empty trace.
pub fn combined_plan_fingerprint(
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    filter: impl Fn(&str) -> bool,
    transform: impl Fn(Plan) -> Plan,
) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let byte = |h: &mut u64, b: u8| *h = (*h ^ b as u64).wrapping_mul(FNV_PRIME);
    for b in all_plan_builders().into_iter().filter(|b| filter(b.name)) {
        let plan = transform((b.build)(tensor, factors, mode));
        let outcome = run_plan(&plan, ExecMode::Dry);
        assert!(
            !outcome.trace.is_empty(),
            "{}: every execution path must emit a plan trace",
            b.name
        );
        for &c in b.name.as_bytes() {
            byte(&mut h, c);
        }
        byte(&mut h, 0xff);
        for c in outcome.trace.fingerprint().to_le_bytes() {
            byte(&mut h, c);
        }
    }
    h
}
