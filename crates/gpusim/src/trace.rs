//! Chrome-trace (`about:tracing` / Perfetto) export of simulated
//! timelines. The JSON is hand-rolled (trace events are flat and simple),
//! so no serialisation dependency is needed.

use crate::timeline::{Engine, Timeline};
use std::io::Write;

fn engine_track(e: Engine) -> (&'static str, u32) {
    match e {
        Engine::H2D => ("H2D copy engine", 1),
        Engine::Compute => ("SM array", 2),
        Engine::D2H => ("D2H copy engine", 3),
        Engine::Host => ("Host CPU", 4),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Writes the timeline as a Chrome trace-event JSON array. Open the file
/// at `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn write_chrome_trace(timeline: &Timeline, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "[")?;
    let mut first = true;
    // Track-name metadata events.
    for e in [Engine::H2D, Engine::Compute, Engine::D2H, Engine::Host] {
        let (name, tid) = engine_track(e);
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        write!(
            w,
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
        )?;
    }
    for span in &timeline.spans {
        let (_, tid) = engine_track(span.engine);
        writeln!(w, ",")?;
        write!(
            w,
            "  {{\"name\":\"{}\",\"cat\":\"stream{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"op\":{},\"stream\":{}}}}}",
            escape(&span.label),
            span.stream,
            tid,
            span.start * 1e6,
            span.duration() * 1e6,
            span.op,
            span.stream,
        )?;
    }
    writeln!(w, "\n]")
}

/// Renders the trace JSON into a `String`.
pub fn chrome_trace_string(timeline: &Timeline) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(timeline, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("trace JSON is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceSpec, Gpu};

    fn sample_timeline() -> Timeline {
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let s0 = gpu.create_stream();
        let s1 = gpu.create_stream();
        gpu.h2d(s0, 5_000_000, "seg0 H2D");
        gpu.h2d(s1, 5_000_000, "seg1 \"quoted\" H2D");
        gpu.d2h(s0, 1_000_000, "out D2H");
        gpu.synchronize()
    }

    #[test]
    fn trace_is_structurally_sound_json() {
        let t = sample_timeline();
        let json = chrome_trace_string(&t);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // One X event per span + 4 metadata events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), t.spans.len());
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 4);
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn labels_are_escaped() {
        let t = sample_timeline();
        let json = chrome_trace_string(&t);
        assert!(json.contains("seg1 \\\"quoted\\\" H2D"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let t = sample_timeline();
        let json = chrome_trace_string(&t);
        // The second H2D starts after the first (~205µs for 5MB at 24.3GB/s
        // plus latency): its ts must be > 100.
        let ts: Vec<f64> = json
            .split("\"ts\":")
            .skip(1)
            .map(|s| s.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(ts.iter().any(|&x| x > 100.0));
        assert!(ts.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn empty_timeline_traces_cleanly() {
        let json = chrome_trace_string(&Timeline::default());
        assert!(json.contains("thread_name"));
        assert!(!json.contains("\"ph\":\"X\""));
    }
}
