//! Kernel launch configurations — the `gridSize` × `blockSize` space that
//! the adaptive launching strategy (§IV-B) searches.

use crate::DeviceSpec;

/// A kernel launch configuration.
///
/// Matches the paper's terminology: `grid` is the number of thread blocks
/// in the grid and `block` the threads per block; `shared_mem_per_block`
/// is the dynamic shared-memory request of the tiled kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Number of thread blocks (`gridSize`).
    pub grid: u32,
    /// Threads per block (`blockSize`).
    pub block: u32,
    /// Dynamic shared memory per block, in bytes.
    pub shared_mem_per_block: u32,
}

impl LaunchConfig {
    /// Creates a configuration with no dynamic shared memory.
    pub fn new(grid: u32, block: u32) -> Self {
        Self { grid, block, shared_mem_per_block: 0 }
    }

    /// Creates a configuration with a dynamic shared-memory request.
    pub fn with_shared(grid: u32, block: u32, shared_mem_per_block: u32) -> Self {
        Self { grid, block, shared_mem_per_block }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid as u64 * self.block as u64
    }

    /// Validates against device limits, returning a description of the
    /// first violated constraint.
    pub fn validate(&self, device: &DeviceSpec) -> Result<(), String> {
        if self.grid == 0 {
            return Err("gridSize must be positive".into());
        }
        if self.block == 0 {
            return Err("blockSize must be positive".into());
        }
        if self.block > device.max_threads_per_block {
            return Err(format!(
                "blockSize {} exceeds device limit {}",
                self.block, device.max_threads_per_block
            ));
        }
        if !self.block.is_multiple_of(device.warp_size) {
            return Err(format!(
                "blockSize {} is not a multiple of the warp size {}",
                self.block, device.warp_size
            ));
        }
        if self.shared_mem_per_block > device.shared_mem_per_block {
            return Err(format!(
                "shared memory request {} exceeds per-block limit {}",
                self.shared_mem_per_block, device.shared_mem_per_block
            ));
        }
        Ok(())
    }

    /// The ParTI-style default heuristic: 256 threads per block, one thread
    /// per non-zero, grid capped at `2^16` blocks (entries then loop).
    pub fn parti_default(nnz: usize) -> Self {
        let block = 256u32;
        let grid = (nnz as u64).div_ceil(block as u64).clamp(1, 1 << 16) as u32;
        Self::new(grid, block)
    }

    /// The sweep space of Fig. 4: `blockSize ∈ {32, 64, …, 1024}` ×
    /// `gridSize ∈ {32, 64, …, 2^17}` (powers of two), all validated
    /// against `device`.
    pub fn sweep_space(device: &DeviceSpec) -> Vec<LaunchConfig> {
        let mut out = Vec::new();
        let mut block = device.warp_size;
        while block <= device.max_threads_per_block {
            let mut grid = 32u32;
            while grid <= (1 << 17) {
                let cfg = LaunchConfig::new(grid, block);
                if cfg.validate(device).is_ok() {
                    out.push(cfg);
                }
                grid *= 2;
            }
            block *= 2;
        }
        out
    }

    /// A coarser sweep (every other power of two) for fast training loops.
    pub fn coarse_sweep_space(device: &DeviceSpec) -> Vec<LaunchConfig> {
        Self::sweep_space(device)
            .into_iter()
            .filter(|c| c.grid.trailing_zeros() % 2 == 1 || c.grid == 32)
            .collect()
    }
}

impl std::fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<<<{}, {}, {}B>>>", self.grid, self.block, self.shared_mem_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_reasonable_config() {
        let d = DeviceSpec::rtx3090();
        assert!(LaunchConfig::new(1024, 256).validate(&d).is_ok());
        assert!(LaunchConfig::with_shared(64, 128, 48 * 1024).validate(&d).is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let d = DeviceSpec::rtx3090();
        assert!(LaunchConfig::new(0, 256).validate(&d).is_err());
        assert!(LaunchConfig::new(16, 0).validate(&d).is_err());
        assert!(LaunchConfig::new(16, 2048).validate(&d).is_err());
        assert!(LaunchConfig::new(16, 100).validate(&d).is_err(), "non-warp-multiple");
        assert!(LaunchConfig::with_shared(16, 128, 101 * 1024).validate(&d).is_err());
    }

    #[test]
    fn parti_default_covers_nnz() {
        let c = LaunchConfig::parti_default(100_000);
        assert_eq!(c.block, 256);
        assert!(c.total_threads() >= 100_000);
        // Tiny tensor: at least one block.
        assert_eq!(LaunchConfig::parti_default(1).grid, 1);
        // Huge tensor: capped grid.
        assert_eq!(LaunchConfig::parti_default(1 << 30).grid, 1 << 16);
    }

    #[test]
    fn sweep_space_is_valid_and_covers_both_axes() {
        let d = DeviceSpec::rtx3090();
        let space = LaunchConfig::sweep_space(&d);
        assert!(space.len() > 40, "expected a rich sweep, got {}", space.len());
        assert!(space.iter().all(|c| c.validate(&d).is_ok()));
        let blocks: std::collections::HashSet<u32> = space.iter().map(|c| c.block).collect();
        assert!(blocks.contains(&32) && blocks.contains(&1024));
        let grids: std::collections::HashSet<u32> = space.iter().map(|c| c.grid).collect();
        assert!(grids.contains(&32) && grids.contains(&(1 << 17)));
    }

    #[test]
    fn coarse_sweep_is_a_subset() {
        let d = DeviceSpec::rtx3090();
        let full: std::collections::HashSet<_> =
            LaunchConfig::sweep_space(&d).into_iter().collect();
        let coarse = LaunchConfig::coarse_sweep_space(&d);
        assert!(coarse.len() < full.len());
        assert!(coarse.iter().all(|c| full.contains(c)));
    }

    #[test]
    fn display_formats_like_cuda() {
        let c = LaunchConfig::with_shared(8, 256, 1024);
        assert_eq!(format!("{c}"), "<<<8, 256, 1024B>>>");
    }
}
