//! SM occupancy calculation.
//!
//! Occupancy — how many blocks/threads of a launch are resident on each SM
//! — is the mechanism behind the paper's observation that "when gridSize
//! and blockSize reach a certain value, the performance decreases": blocks
//! that are too large quantise badly against the per-SM thread limit, and
//! shared-memory-hungry blocks limit residency. This module mirrors the
//! CUDA occupancy calculator rules for threads, blocks, shared memory and
//! registers.

use crate::{DeviceSpec, LaunchConfig};

/// What limited the occupancy of a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Resident-thread limit per SM.
    Threads,
    /// Resident-block limit per SM.
    Blocks,
    /// Shared-memory capacity per SM.
    SharedMem,
    /// Register file capacity per SM.
    Registers,
    /// The grid is too small to fill the device.
    GridSize,
}

/// Result of the occupancy computation for one launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM (hardware limit, ignoring grid size).
    pub blocks_per_sm: u32,
    /// Threads resident per SM.
    pub active_threads_per_sm: u32,
    /// `active_threads_per_sm / max_threads_per_sm`.
    pub ratio: f64,
    /// The binding constraint.
    pub limiter: Limiter,
    /// Number of full waves the grid needs
    /// (`ceil(grid / (blocks_per_sm * num_sms))`).
    pub waves: u32,
    /// Threads actually resident across the device considering the grid
    /// size (last wave may be partial).
    pub resident_threads: u64,
}

/// Computes the occupancy of `config` on `device` assuming
/// `regs_per_thread` registers per thread.
///
/// # Panics
/// Panics if the configuration fails [`LaunchConfig::validate`].
pub fn occupancy(device: &DeviceSpec, config: &LaunchConfig, regs_per_thread: u32) -> Occupancy {
    config
        .validate(device)
        .unwrap_or_else(|e| panic!("invalid launch configuration {config}: {e}"));

    let by_threads = device.max_threads_per_sm / config.block;
    let by_blocks = device.max_blocks_per_sm;
    let by_smem =
        device.shared_mem_per_sm.checked_div(config.shared_mem_per_block).unwrap_or(u32::MAX);
    let regs_per_block = regs_per_thread.max(1) * config.block;
    let by_regs = device.registers_per_sm / regs_per_block.max(1);

    let mut blocks_per_sm = by_threads.min(by_blocks).min(by_smem).min(by_regs);
    let mut limiter = if blocks_per_sm == by_threads {
        Limiter::Threads
    } else if blocks_per_sm == by_smem {
        Limiter::SharedMem
    } else if blocks_per_sm == by_regs {
        Limiter::Registers
    } else {
        Limiter::Blocks
    };
    // A launch whose block cannot fit even once is rejected by hardware; we
    // clamp to zero residency and mark the limiter.
    if blocks_per_sm == 0 {
        return Occupancy {
            blocks_per_sm: 0,
            active_threads_per_sm: 0,
            ratio: 0.0,
            limiter,
            waves: u32::MAX,
            resident_threads: 0,
        };
    }

    // The grid may be too small to reach the hardware residency.
    let hw_blocks_device = blocks_per_sm as u64 * device.num_sms as u64;
    if (config.grid as u64) < hw_blocks_device {
        limiter = Limiter::GridSize;
        // Residency per SM is still the hardware figure, but the device is
        // under-filled; reflect that in resident_threads below.
    }
    blocks_per_sm = blocks_per_sm.min(config.grid.max(1));

    let active = blocks_per_sm * config.block;
    let waves = (config.grid as u64).div_ceil(hw_blocks_device).max(1) as u32;
    let resident = (config.grid as u64).min(hw_blocks_device) * config.block as u64;

    Occupancy {
        blocks_per_sm,
        active_threads_per_sm: active,
        ratio: active as f64 / device.max_threads_per_sm as f64,
        limiter,
        waves,
        resident_threads: resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    #[test]
    fn block_256_is_thread_limited_at_full_occupancy() {
        // 1536 / 256 = 6 blocks per SM, 1536 active threads -> ratio 1.0.
        let o = occupancy(&dev(), &LaunchConfig::new(1 << 16, 256), 32);
        assert_eq!(o.blocks_per_sm, 6);
        assert_eq!(o.active_threads_per_sm, 1536);
        assert!((o.ratio - 1.0).abs() < 1e-12);
        assert_eq!(o.limiter, Limiter::Threads);
    }

    #[test]
    fn block_1024_quantizes_badly() {
        // 1536 / 1024 = 1 block per SM -> only 1024 of 1536 threads: 66%.
        let o = occupancy(&dev(), &LaunchConfig::new(1 << 16, 1024), 32);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.active_threads_per_sm, 1024);
        assert!(o.ratio < 0.7);
    }

    #[test]
    fn shared_memory_limits_residency() {
        // 48 KB per block on a 128 KB SM -> 2 blocks; with block=128 that is
        // 256 threads of 1536.
        let o = occupancy(&dev(), &LaunchConfig::with_shared(1 << 16, 128, 48 * 1024), 32);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMem);
        assert!(o.ratio < 0.2);
    }

    #[test]
    fn registers_limit_residency() {
        // 128 regs/thread * 512 threads = 65536 regs = whole file -> 1 block.
        let o = occupancy(&dev(), &LaunchConfig::new(1 << 16, 512), 128);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn small_grid_underfills_device() {
        let o = occupancy(&dev(), &LaunchConfig::new(32, 256), 32);
        assert_eq!(o.limiter, Limiter::GridSize);
        assert_eq!(o.resident_threads, 32 * 256);
        assert_eq!(o.waves, 1);
    }

    #[test]
    fn waves_scale_with_grid() {
        // 6 blocks/SM * 82 SMs = 492 concurrent blocks.
        let o1 = occupancy(&dev(), &LaunchConfig::new(492, 256), 32);
        assert_eq!(o1.waves, 1);
        let o2 = occupancy(&dev(), &LaunchConfig::new(493, 256), 32);
        assert_eq!(o2.waves, 2);
        let o10 = occupancy(&dev(), &LaunchConfig::new(4920, 256), 32);
        assert_eq!(o10.waves, 10);
    }

    #[test]
    fn resident_threads_cap_at_hardware() {
        let o = occupancy(&dev(), &LaunchConfig::new(1 << 17, 256), 32);
        assert_eq!(o.resident_threads, dev().max_resident_threads());
    }

    #[test]
    fn block_resident_limit_applies_to_tiny_blocks() {
        // block=32: thread limit allows 48 blocks, but max_blocks_per_sm=16.
        let o = occupancy(&dev(), &LaunchConfig::new(1 << 16, 32), 32);
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.limiter, Limiter::Blocks);
        assert_eq!(o.active_threads_per_sm, 512);
    }

    #[test]
    #[should_panic(expected = "invalid launch configuration")]
    fn invalid_config_panics() {
        let _ = occupancy(&dev(), &LaunchConfig::new(0, 256), 32);
    }
}
