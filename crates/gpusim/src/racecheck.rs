//! A simulated-race checker for functionally-executed kernels.
//!
//! The [`Gpu`](crate::Gpu) executes kernel bodies on the host, so a kernel
//! whose *real* CUDA incarnation would lose updates (two threads plain-
//! writing the same output word without synchronisation) still computes
//! the right answer in simulation. This module closes that fidelity gap:
//! kernels replay their memory-access pattern over the simulated
//! `(grid × block)` index space into an [`AccessLog`], and
//! [`AccessLog::check`] flags every address that two different simulated
//! threads write with at least one *plain* (non-atomic) store.
//!
//! The race rule mirrors the CUDA memory model at kernel scope:
//!
//! * `atomicAdd` vs `atomicAdd` on the same word — never a race;
//! * plain write vs *any* write from a different thread — a race
//!   (hardware gives no ordering between unsynchronised stores, and a
//!   plain read-modify-write can lose a concurrent atomic's update);
//! * any number of accesses from one thread — program order, never a race
//!   (block-wide barriers between phases are the kernel author's claim,
//!   encoded by attributing each address to its owning lane).
//!
//! Shared-memory addresses are scoped per thread block (two blocks using
//! local offset 0 of their own tile never conflict); global addresses are
//! device-wide.

use std::collections::HashMap;
use std::fmt;

/// A simulated thread identity inside one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimThread {
    /// Thread-block index in the grid.
    pub block: u32,
    /// Thread index within the block.
    pub thread: u32,
}

impl fmt::Display for SimThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t({},{})", self.block, self.thread)
    }
}

/// Which buffer an access targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddrSpace {
    /// Device-global memory (the MTTKRP output buffer).
    Global,
    /// Per-block shared memory; addresses are scoped by the block id.
    Shared,
}

/// The kind of store a simulated thread issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// An unsynchronised store (or read-modify-write) — races with any
    /// other thread's write to the same word.
    PlainWrite,
    /// A hardware atomic (`atomicAdd` and friends) — races only with
    /// plain writes.
    Atomic,
}

/// Key identifying one addressable word. Shared-memory words carry the
/// owning block id so distinct blocks' tiles never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct AddrKey {
    space: AddrSpace,
    /// Block scope for `Shared`; 0 for `Global`.
    scope: u32,
    addr: usize,
}

/// One recorded conflict: two distinct simulated threads, same word, at
/// least one plain write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceConflict {
    /// Address space of the contested word.
    pub space: AddrSpace,
    /// Block scope (meaningful for shared memory).
    pub scope: u32,
    /// Word offset within the buffer.
    pub addr: usize,
    /// First thread and its access kind.
    pub a: (SimThread, AccessKind),
    /// Second thread and its access kind.
    pub b: (SimThread, AccessKind),
}

impl fmt::Display for RaceConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} word {} (scope {}): {} {:?} vs {} {:?}",
            self.space, self.addr, self.scope, self.a.0, self.a.1, self.b.0, self.b.1
        )
    }
}

/// The verdict of one race check.
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// Distinct contested words, deterministically ordered; one conflict
    /// witness (the lowest-numbered thread pair) is kept per word.
    pub conflicts: Vec<RaceConflict>,
    /// Total writes inspected.
    pub writes_checked: usize,
    /// Distinct words written.
    pub words_written: usize,
}

impl RaceReport {
    /// True when no conflicting pair of writes was found.
    pub fn is_race_free(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// A short human-readable summary.
    pub fn summary(&self) -> String {
        if self.is_race_free() {
            format!("race-free ({} writes over {} words)", self.writes_checked, self.words_written)
        } else {
            let first = &self.conflicts[0];
            format!(
                "{} contested word(s) out of {}; first: {}",
                self.conflicts.len(),
                self.words_written,
                first
            )
        }
    }
}

/// Records the write pattern of one simulated kernel launch.
///
/// Only writes are recorded: concurrent reads never race with each other,
/// and a read racing a write manifests as wrong *values*, which the
/// differential oracle covers — the checker's job is lost-update bugs.
#[derive(Default)]
pub struct AccessLog {
    // Per word: every distinct (thread, kind) that wrote it. Kept small —
    // real kernels write each word from very few threads.
    writes: HashMap<AddrKey, Vec<(SimThread, AccessKind)>>,
    total: usize,
}

impl AccessLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a global-memory write of `kind` to word `addr` by `thread`.
    pub fn global_write(&mut self, addr: usize, thread: SimThread, kind: AccessKind) {
        self.record(AddrKey { space: AddrSpace::Global, scope: 0, addr }, thread, kind);
    }

    /// Records a shared-memory write of `kind` to word `addr` of block
    /// `block`'s tile by `thread` (which must belong to that block).
    pub fn shared_write(&mut self, block: u32, addr: usize, thread: SimThread, kind: AccessKind) {
        debug_assert_eq!(thread.block, block, "shared tile written from a foreign block");
        self.record(AddrKey { space: AddrSpace::Shared, scope: block, addr }, thread, kind);
    }

    fn record(&mut self, key: AddrKey, thread: SimThread, kind: AccessKind) {
        self.total += 1;
        let entry = self.writes.entry(key).or_default();
        if !entry.contains(&(thread, kind)) {
            entry.push((thread, kind));
        }
    }

    /// Number of writes recorded so far.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Scans the log for conflicting writes and returns a deterministic
    /// report (one witness pair per contested word, sorted by address).
    pub fn check(&self) -> RaceReport {
        let mut conflicts = Vec::new();
        for (key, writers) in &self.writes {
            if writers.len() < 2 {
                continue;
            }
            let mut writers = writers.clone();
            writers.sort_unstable();
            // A word is contested iff some plain write comes from a thread
            // that is not the only writer.
            'outer: for i in 0..writers.len() {
                if writers[i].1 != AccessKind::PlainWrite {
                    continue;
                }
                for other in &writers {
                    if other.0 != writers[i].0 {
                        conflicts.push(RaceConflict {
                            space: key.space,
                            scope: key.scope,
                            addr: key.addr,
                            a: writers[i],
                            b: *other,
                        });
                        break 'outer;
                    }
                }
            }
        }
        conflicts.sort_by_key(|c| (c.space, c.scope, c.addr));
        RaceReport { conflicts, writes_checked: self.total, words_written: self.writes.len() }
    }
}

/// Maps a flat work item (e.g. a non-zero index) onto the simulated thread
/// that processes it under a grid-stride loop — the standard CUDA idiom
/// all the COO-family kernels use.
pub fn grid_stride_thread(item: u64, grid: u32, block: u32) -> SimThread {
    let total = grid as u64 * block as u64;
    let tid = (item % total.max(1)) as u32;
    SimThread { block: tid / block.max(1), thread: tid % block.max(1) }
}

/// Maps a flat block-level work item (a tensor block, an F-COO partition,
/// a tile window) onto its simulated thread block.
pub fn block_of_item(item: u64, grid: u32) -> u32 {
    (item % grid.max(1) as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimThread = SimThread { block: 0, thread: 0 };
    const T1: SimThread = SimThread { block: 0, thread: 1 };

    #[test]
    fn atomic_only_contention_is_race_free() {
        let mut log = AccessLog::new();
        for t in [T0, T1] {
            log.global_write(7, t, AccessKind::Atomic);
        }
        let r = log.check();
        assert!(r.is_race_free(), "{}", r.summary());
        assert_eq!(r.words_written, 1);
        assert_eq!(r.writes_checked, 2);
    }

    #[test]
    fn two_plain_writes_from_different_threads_conflict() {
        let mut log = AccessLog::new();
        log.global_write(3, T0, AccessKind::PlainWrite);
        log.global_write(3, T1, AccessKind::PlainWrite);
        let r = log.check();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].addr, 3);
        assert!(r.summary().contains("contested"));
    }

    #[test]
    fn plain_vs_atomic_from_different_threads_conflicts() {
        let mut log = AccessLog::new();
        log.global_write(5, T0, AccessKind::PlainWrite);
        log.global_write(5, T1, AccessKind::Atomic);
        assert_eq!(log.check().conflicts.len(), 1);
    }

    #[test]
    fn same_thread_rewrites_are_program_order() {
        let mut log = AccessLog::new();
        log.global_write(1, T0, AccessKind::PlainWrite);
        log.global_write(1, T0, AccessKind::PlainWrite);
        log.global_write(1, T0, AccessKind::Atomic);
        assert!(log.check().is_race_free());
    }

    #[test]
    fn shared_tiles_are_scoped_per_block() {
        let mut log = AccessLog::new();
        let other = SimThread { block: 1, thread: 0 };
        log.shared_write(0, 0, T0, AccessKind::PlainWrite);
        log.shared_write(1, 0, other, AccessKind::PlainWrite);
        assert!(log.check().is_race_free(), "same offset, different tiles");
        log.shared_write(0, 0, T1, AccessKind::PlainWrite);
        assert_eq!(log.check().conflicts.len(), 1, "same tile word, two lanes");
    }

    #[test]
    fn conflicts_are_deterministically_ordered() {
        let build = || {
            let mut log = AccessLog::new();
            for addr in [9usize, 2, 5] {
                log.global_write(addr, T0, AccessKind::PlainWrite);
                log.global_write(addr, T1, AccessKind::PlainWrite);
            }
            log.check()
        };
        let a = build();
        let b = build();
        assert_eq!(a.conflicts, b.conflicts);
        let addrs: Vec<usize> = a.conflicts.iter().map(|c| c.addr).collect();
        assert_eq!(addrs, vec![2, 5, 9]);
    }

    /// The segmented-scan carry protocol at log level: each chunk worker
    /// plain-stores only its *own* carry cell, and the single resolver
    /// thread is the only writer of the boundary row — race-free even
    /// though the row is "shared" between chunks logically.
    #[test]
    fn exclusive_carry_cells_with_single_resolver_are_race_free() {
        let mut log = AccessLog::new();
        let chunks: Vec<SimThread> = (0..4).map(|b| SimThread { block: b, thread: 0 }).collect();
        let carry_base = 100usize;
        for (c, t) in chunks.iter().enumerate() {
            // Interior rows: disjoint per chunk.
            log.global_write(10 + c, *t, AccessKind::PlainWrite);
            // Carry-out: one exclusive cell per chunk.
            log.global_write(carry_base + c, *t, AccessKind::PlainWrite);
        }
        // The resolver alone writes the cut row (word 50).
        let resolver = SimThread { block: 0, thread: 0 };
        log.global_write(50, resolver, AccessKind::Atomic);
        let r = log.check();
        assert!(r.is_race_free(), "{}", r.summary());
    }

    /// The broken variant: chunk workers apply their carries straight to
    /// the shared boundary row with plain stores — the checker must flag
    /// the word even though every single store looks innocuous locally.
    #[test]
    fn plain_carry_application_to_shared_row_is_caught() {
        let mut log = AccessLog::new();
        for b in 0..3u32 {
            let t = SimThread { block: b, thread: 0 };
            log.global_write(50, t, AccessKind::PlainWrite);
        }
        let r = log.check();
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].addr, 50);
    }

    #[test]
    fn grid_stride_mapping_wraps() {
        assert_eq!(grid_stride_thread(0, 2, 32), SimThread { block: 0, thread: 0 });
        assert_eq!(grid_stride_thread(33, 2, 32), SimThread { block: 1, thread: 1 });
        assert_eq!(grid_stride_thread(64, 2, 32), SimThread { block: 0, thread: 0 });
        assert_eq!(block_of_item(5, 4), 1);
    }
}
