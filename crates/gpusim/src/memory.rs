//! Device memory management: a size-classed exclusive pool allocator.
//!
//! The pipeline of §IV-C must "reasonably allocate storage space …
//! according to the performance and storage capacity of the GPU", and the
//! out-of-core streaming mode goes further: segment staging buffers are
//! allocated and released thousands of times per plan, so the simulator
//! models a real pooled allocator rather than a monotone byte counter.
//!
//! ## Design (kubecl-style exclusive pools)
//!
//! Pages are carved from capacity at their **exact** requested size — a
//! streaming budget is often tight to the byte, and rounding the carve up
//! would spuriously overflow it. Size classes (powers of two, ≥
//! [`MIN_CLASS_BYTES`]) govern **reuse**: a freed page parks in the free
//! list and is preferentially handed to the next fitting request of the
//! *same* class (exclusive-pool semantics — a small request never squats
//! a huge page), which is what makes a double-buffered streaming loop
//! cost two carves total instead of one per segment. Under capacity
//! pressure the allocator degrades gracefully: cross-class best-fit reuse
//! first, then an auto-trim of every pooled free page, and only then
//! [`OutOfMemory`].
//!
//! The pool distinguishes three byte populations, all tracked with
//! high-watermarks:
//!
//! * **in use** — page bytes of live allocations ([`MemoryPool::used`]);
//! * **reserved** — carved from capacity: in-use pages plus pooled free
//!   pages ([`MemoryPool::reserved`]);
//! * **requested** — what callers actually asked for; `in_use −
//!   requested` is the internal fragmentation of reusing pages larger
//!   than their request.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Smallest size class: smaller requests all share the bottom class.
pub const MIN_CLASS_BYTES: u64 = 256;

/// Error returned when an allocation exceeds the remaining capacity even
/// after trimming every pooled free page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free (capacity minus live allocations, post-trim).
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A live device allocation. Freed via [`MemoryPool::free`] (the page
/// returns to its size-class free list for reuse).
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    id: u64,
    requested: u64,
    page_bytes: u64,
}

impl Allocation {
    /// Bytes the caller requested.
    pub fn bytes(&self) -> u64 {
        self.requested
    }

    /// Bytes of the backing page (≥ [`Allocation::bytes`] when a larger
    /// pooled page was reused).
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

/// A point-in-time snapshot of the pool's accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total device capacity in bytes.
    pub capacity: u64,
    /// Page bytes of live allocations.
    pub in_use: u64,
    /// Bytes carved from capacity (live pages + pooled free pages).
    pub reserved: u64,
    /// Bytes callers actually requested across live allocations.
    pub requested: u64,
    /// High-watermark of `in_use`.
    pub peak_in_use: u64,
    /// High-watermark of `reserved`.
    pub peak_reserved: u64,
    /// Pages carved fresh from capacity.
    pub carves: u64,
    /// Allocations served from the free lists (no capacity touched).
    pub reuses: u64,
    /// Free pages released back to capacity by trims.
    pub trimmed_pages: u64,
    /// Allocation requests that failed with [`OutOfMemory`].
    pub failures: u64,
}

impl MemStats {
    /// Internal fragmentation: page bytes live allocations hold beyond
    /// what was requested (the cost of reusing larger pooled pages).
    pub fn internal_frag_bytes(&self) -> u64 {
        self.in_use - self.requested
    }

    /// Bytes sitting in class free lists (reserved but reusable).
    pub fn pooled_free_bytes(&self) -> u64 {
        self.reserved - self.in_use
    }

    /// Memory pressure in `[0, 1]`: fraction of capacity reserved.
    pub fn pressure(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.reserved as f64 / self.capacity as f64
    }
}

#[derive(Default)]
struct PoolInner {
    in_use: u64,
    reserved: u64,
    requested: u64,
    peak_in_use: u64,
    peak_reserved: u64,
    next_id: u64,
    /// page size → stack of reusable page ids (LIFO, deterministic).
    free_pages: BTreeMap<u64, Vec<u64>>,
    carves: u64,
    reuses: u64,
    trimmed_pages: u64,
    failures: u64,
}

impl PoolInner {
    fn take_free(&mut self, page: u64) {
        let ids = self.free_pages.get_mut(&page).expect("page size has a free list");
        ids.pop().expect("free lists never hold empty vecs");
        if ids.is_empty() {
            self.free_pages.remove(&page);
        }
    }

    fn trim_all(&mut self) {
        for (page, ids) in std::mem::take(&mut self.free_pages) {
            let n = ids.len() as u64;
            self.reserved -= page * n;
            self.trimmed_pages += n;
        }
    }
}

/// The size class of a request: next power of two, with a shared bottom
/// class at [`MIN_CLASS_BYTES`]. Free pages are reused exclusively within
/// their class before any cross-class fallback.
pub fn size_class(bytes: u64) -> u64 {
    bytes.max(MIN_CLASS_BYTES).next_power_of_two()
}

/// A capacity-tracked, size-classed exclusive pool over the device memory.
///
/// Thread-safe: allocations may be requested from kernel closures running
/// on the rayon pool.
pub struct MemoryPool {
    capacity: u64,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for MemoryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("MemoryPool")
            .field("capacity", &s.capacity)
            .field("in_use", &s.in_use)
            .field("reserved", &s.reserved)
            .finish_non_exhaustive()
    }
}

impl MemoryPool {
    /// Creates a pool with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, inner: Mutex::new(PoolInner::default()) }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Page bytes of live allocations.
    pub fn used(&self) -> u64 {
        self.inner.lock().in_use
    }

    /// Bytes carved from capacity (live pages plus pooled free pages).
    pub fn reserved(&self) -> u64 {
        self.inner.lock().reserved
    }

    /// Bytes a fresh carve could still claim without trimming.
    pub fn available(&self) -> u64 {
        self.capacity - self.inner.lock().reserved
    }

    /// High-watermark of live page bytes.
    pub fn peak(&self) -> u64 {
        self.inner.lock().peak_in_use
    }

    /// Memory pressure in `[0, 1]`: fraction of capacity reserved.
    pub fn pressure(&self) -> f64 {
        self.stats().pressure()
    }

    /// Snapshot of the full accounting state.
    pub fn stats(&self) -> MemStats {
        let g = self.inner.lock();
        MemStats {
            capacity: self.capacity,
            in_use: g.in_use,
            reserved: g.reserved,
            requested: g.requested,
            peak_in_use: g.peak_in_use,
            peak_reserved: g.peak_reserved,
            carves: g.carves,
            reuses: g.reuses,
            trimmed_pages: g.trimmed_pages,
            failures: g.failures,
        }
    }

    /// Allocates `bytes`: (1) reuse a pooled page of the same size class,
    /// (2) carve a fresh exact-size page, (3) best-fit reuse of any
    /// larger pooled page, (4) carve after trimming the free lists.
    /// Fails with [`OutOfMemory`] only when the request cannot fit next
    /// to the *live* allocations at all.
    pub fn alloc(&self, bytes: u64) -> Result<Allocation, OutOfMemory> {
        let mut g = self.inner.lock();
        if bytes == 0 {
            let id = g.next_id;
            g.next_id += 1;
            return Ok(Allocation { id, requested: 0, page_bytes: 0 });
        }
        // 1. Exclusive-pool reuse: the smallest free page that fits AND
        //    shares the request's size class — exactly the pages in
        //    `[bytes, size_class(bytes)]`.
        let class = size_class(bytes);
        if let Some(page) = g.free_pages.range(bytes..=class).next().map(|(&p, _)| p) {
            g.take_free(page);
            g.reuses += 1;
            return Ok(finish_alloc(&mut g, bytes, page));
        }
        // 2. Fresh exact-size carve: capacity is charged what was asked,
        //    so a byte-tight streaming budget never fails on rounding.
        if g.reserved + bytes <= self.capacity {
            g.carves += 1;
            g.reserved += bytes;
            return Ok(finish_alloc(&mut g, bytes, bytes));
        }
        // 3. Pressure fallback: best-fit reuse of a larger-class pooled
        //    page (costs internal fragmentation, saves capacity).
        if let Some(page) = g.free_pages.range(bytes..).next().map(|(&p, _)| p) {
            g.take_free(page);
            g.reuses += 1;
            return Ok(finish_alloc(&mut g, bytes, page));
        }
        // 4. Trim every pooled free page back to capacity and retry the
        //    carve.
        if g.reserved > g.in_use {
            g.trim_all();
            if g.reserved + bytes <= self.capacity {
                g.carves += 1;
                g.reserved += bytes;
                return Ok(finish_alloc(&mut g, bytes, bytes));
            }
        }
        g.failures += 1;
        // Post-trim, reserved == in_use, so this is the honest free count.
        Err(OutOfMemory { requested: bytes, available: self.capacity - g.reserved })
    }

    /// Releases an allocation: the page parks in the free list keyed by
    /// its size and is reused by the next fitting request of its class.
    /// Capacity is only recovered by [`MemoryPool::trim`] (or the
    /// allocator's auto-trim under pressure) — exclusive-pool semantics.
    pub fn free(&self, alloc: Allocation) {
        let mut g = self.inner.lock();
        g.in_use -= alloc.page_bytes;
        g.requested -= alloc.requested;
        if alloc.page_bytes > 0 {
            g.free_pages.entry(alloc.page_bytes).or_default().push(alloc.id);
        }
    }

    /// Releases every pooled free page back to capacity.
    pub fn trim(&self) {
        self.inner.lock().trim_all();
    }
}

fn finish_alloc(g: &mut PoolInner, requested: u64, page_bytes: u64) -> Allocation {
    g.in_use += page_bytes;
    g.requested += requested;
    g.peak_in_use = g.peak_in_use.max(g.in_use);
    g.peak_reserved = g.peak_reserved.max(g.reserved);
    let id = g.next_id;
    g.next_id += 1;
    Allocation { id, requested, page_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freed_pages_are_reused_within_their_size_class() {
        let pool = MemoryPool::new(1 << 20);
        let a = pool.alloc(400).unwrap();
        assert_eq!(a.bytes(), 400);
        assert_eq!(a.page_bytes(), 400, "carves are exact-size");
        assert_eq!(pool.used(), 400);
        pool.free(a);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.reserved(), 400, "freed page stays pooled");
        // Same class (256, 512]: served from the free list, no new carve.
        let b = pool.alloc(300).unwrap();
        assert_eq!(b.page_bytes(), 400);
        let s = pool.stats();
        assert_eq!(s.reuses, 1);
        assert_eq!(s.carves, 1);
        assert_eq!(s.internal_frag_bytes(), 100, "reused page is 100 B over");
        pool.free(b);
        // Different class: a tiny request must not squat the 400 B page.
        let c = pool.alloc(64).unwrap();
        assert_eq!(c.page_bytes(), 64);
        assert_eq!(pool.stats().carves, 2);
        pool.free(c);
    }

    #[test]
    fn tight_capacity_keeps_exact_accounting() {
        // Byte-tight capacity: exact carves preserve the seed
        // allocator's accounting down to the last byte.
        let pool = MemoryPool::new(1_000);
        let a = pool.alloc(999).unwrap();
        assert_eq!(a.page_bytes(), 999);
        let err = pool.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 1);
        assert!(err.to_string().contains("out of memory"));
        assert_eq!(pool.stats().failures, 1);
        let b = pool.alloc(1).unwrap();
        assert_eq!(pool.used(), 1_000);
        assert_eq!(pool.peak(), 1_000);
        pool.free(a);
        pool.free(b);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn pressure_falls_back_to_best_fit_then_trim() {
        let pool = MemoryPool::new(1_024);
        let a = pool.alloc(1_000).unwrap();
        pool.free(a);
        assert_eq!(pool.reserved(), 1_000, "page pooled, capacity still reserved");
        // 24 B of capacity remain: a 200 B request cannot carve, so it
        // best-fits into the pooled 1000 B page despite the class gap.
        let b = pool.alloc(200).unwrap();
        assert_eq!(b.page_bytes(), 1_000);
        assert_eq!(pool.stats().internal_frag_bytes(), 800);
        pool.free(b);
        // A request bigger than any pooled page only fits once the
        // pooled 1000 B page is trimmed back to capacity.
        let c = pool.alloc(1_010).unwrap();
        assert_eq!(c.page_bytes(), 1_010);
        assert!(pool.stats().trimmed_pages >= 1, "auto-trim reclaimed the pooled page");
        pool.free(c);
        pool.trim();
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn fragmentation_accounting_tracks_reuse_waste() {
        let pool = MemoryPool::new(1 << 20);
        let a = pool.alloc(512).unwrap();
        pool.free(a);
        let b = pool.alloc(300).unwrap(); // same class: reuses the 512 B page
        let s = pool.stats();
        assert_eq!(s.requested, 300);
        assert_eq!(s.in_use, 512);
        assert_eq!(s.internal_frag_bytes(), 212);
        assert_eq!(s.pooled_free_bytes(), 0);
        assert!(s.pressure() > 0.0 && s.pressure() < 1.0);
        pool.free(b);
        let s = pool.stats();
        assert_eq!(s.pooled_free_bytes(), 512);
        assert_eq!(s.internal_frag_bytes(), 0);
    }

    #[test]
    fn zero_byte_allocations_are_fine() {
        let pool = MemoryPool::new(10);
        let a = pool.alloc(0).unwrap();
        assert_eq!(pool.used(), 0);
        pool.free(a);
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn peak_tracks_both_live_and_reserved_watermarks() {
        let pool = MemoryPool::new(4_096);
        let a = pool.alloc(1_024).unwrap();
        let b = pool.alloc(1_024).unwrap();
        pool.free(a);
        pool.free(b);
        let c = pool.alloc(1_024).unwrap();
        let s = pool.stats();
        assert_eq!(s.peak_in_use, 2_048);
        assert_eq!(s.peak_reserved, 2_048);
        assert_eq!(s.in_use, 1_024);
        pool.free(c);
    }

    #[test]
    fn concurrent_allocations_never_exceed_capacity() {
        use std::sync::Arc;
        let pool = Arc::new(MemoryPool::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut allocs = Vec::new();
                for _ in 0..100 {
                    if let Ok(a) = p.alloc(37) {
                        allocs.push(a);
                    }
                }
                for a in allocs {
                    p.free(a);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.used(), 0);
        assert!(pool.peak() <= 10_000);
        assert!(pool.reserved() <= 10_000);
    }

    #[test]
    fn streaming_loop_reuses_two_pages() {
        // The two-slot double-buffer pattern: alternate alloc/free of
        // same-class segment buffers must settle on two carved pages.
        let pool = MemoryPool::new(1 << 24);
        let mut slots: [Option<Allocation>; 2] = [None, None];
        for i in 0..64 {
            let s = i % 2;
            if let Some(a) = slots[s].take() {
                pool.free(a);
            }
            slots[s] = Some(pool.alloc(100_000).unwrap());
        }
        for s in &mut slots {
            if let Some(a) = s.take() {
                pool.free(a);
            }
        }
        let st = pool.stats();
        assert_eq!(st.carves, 2, "a steady-state stream carves once per slot");
        assert_eq!(st.reuses, 62);
        assert_eq!(st.peak_in_use, 200_000);
        assert_eq!(st.internal_frag_bytes(), 0);
    }
}
