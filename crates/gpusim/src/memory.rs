//! Device memory accounting.
//!
//! The pipeline of §IV-C must "reasonably allocate storage space …
//! according to the performance and storage capacity of the GPU", so the
//! simulator tracks allocations against the device capacity and fails a
//! request that would not fit — which is what forces large tensors to be
//! segmented in the first place.

use std::sync::atomic::{AtomicU64, Ordering};

/// Error returned when an allocation exceeds the remaining capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A live device allocation. Freed via [`MemoryPool::free`].
#[derive(Debug, PartialEq, Eq)]
pub struct Allocation {
    id: u64,
    bytes: u64,
}

impl Allocation {
    /// Size of the allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A capacity-tracked device memory pool.
///
/// Thread-safe: allocations may be requested from kernel closures running
/// on the rayon pool.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    used: AtomicU64,
    next_id: AtomicU64,
    peak: AtomicU64,
}

impl MemoryPool {
    /// Creates a pool with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            peak: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes currently free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Allocates `bytes`, failing if the pool cannot hold them.
    pub fn alloc(&self, bytes: u64) -> Result<Allocation, OutOfMemory> {
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let new = current + bytes;
            if new > self.capacity {
                return Err(OutOfMemory { requested: bytes, available: self.capacity - current });
            }
            match self.used.compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    return Ok(Allocation { id, bytes });
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Releases an allocation back to the pool.
    pub fn free(&self, alloc: Allocation) {
        let _ = alloc.id;
        self.used.fetch_sub(alloc.bytes, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let pool = MemoryPool::new(1000);
        let a = pool.alloc(400).unwrap();
        assert_eq!(pool.used(), 400);
        assert_eq!(pool.available(), 600);
        let b = pool.alloc(600).unwrap();
        assert_eq!(pool.available(), 0);
        pool.free(a);
        assert_eq!(pool.available(), 400);
        pool.free(b);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 1000);
    }

    #[test]
    fn over_allocation_fails_with_details() {
        let pool = MemoryPool::new(100);
        let _a = pool.alloc(80).unwrap();
        let err = pool.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn zero_byte_allocations_are_fine() {
        let pool = MemoryPool::new(10);
        let a = pool.alloc(0).unwrap();
        assert_eq!(pool.used(), 0);
        pool.free(a);
    }

    #[test]
    fn concurrent_allocations_never_exceed_capacity() {
        use std::sync::Arc;
        let pool = Arc::new(MemoryPool::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut allocs = Vec::new();
                for _ in 0..100 {
                    if let Ok(a) = p.alloc(37) {
                        allocs.push(a);
                    }
                }
                for a in allocs {
                    p.free(a);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.used(), 0);
        assert!(pool.peak() <= 10_000);
    }
}
