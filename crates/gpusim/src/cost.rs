//! Analytic kernel timing model.
//!
//! This is the component that turns a (workload, launch configuration)
//! pair into a simulated duration, and therefore the component responsible
//! for reproducing the *shape* of the paper's Fig. 4 heatmaps:
//!
//! * **small `grid × block`** → few resident threads → memory latency is
//!   not hidden → the effective bandwidth collapses → slow;
//! * **growing `grid × block`** → the bandwidth saturation curve climbs →
//!   fast plateau;
//! * **oversized `block`** → occupancy quantisation against the per-SM
//!   thread/shared-memory limits claws performance back;
//! * **oversized `grid`** → per-block scheduling overhead accumulates,
//!   which matters exactly for the small tensors whose compute time is
//!   tiny — hence the tensor-dependent optimum the paper exploits.
//!
//! The model is a max-of-roofs (memory, compute, atomics, per-thread
//! serial chain) plus launch and scheduling overheads. It is fully
//! deterministic.

use crate::{occupancy, DeviceSpec, LaunchConfig};

/// Description of the dynamic work one kernel launch performs.
///
/// Produced by the kernel implementations in `scalfrag-kernels` from the
/// tensor/segment statistics; consumed by [`kernel_duration`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelWorkload {
    /// Independent parallel work units (for nnz-parallel MTTKRP: nnz).
    pub work_items: u64,
    /// Total floating-point operations.
    pub flops: u64,
    /// Bytes read from global memory (coalesced-equivalent).
    pub bytes_read: u64,
    /// Bytes written to global memory.
    pub bytes_written: u64,
    /// Global atomic read-modify-write operations.
    pub atomic_ops: u64,
    /// Probability that two concurrent atomics collide on the same address
    /// (a Herfindahl index of the output-row distribution, in `[0, 1]`).
    pub atomic_hotness: f64,
    /// Fraction of peak bandwidth achievable by the access pattern
    /// (1.0 = perfectly coalesced streams, ~0.25 = scattered gathers).
    pub coalescing: f64,
    /// Registers per thread (occupancy input).
    pub regs_per_thread: u32,
    /// Factor by which shared-memory staging divides the atomic traffic
    /// that reaches global memory (1.0 = no tiling).
    pub shared_tile_reduction: f64,
    /// Instruction-pipeline cost of one work item, in cycles (per-thread
    /// serial chain when the grid is too small).
    pub item_cycles: f64,
}

impl KernelWorkload {
    /// A neutral workload useful as a builder base in tests.
    pub fn empty() -> Self {
        Self {
            work_items: 0,
            flops: 0,
            bytes_read: 0,
            bytes_written: 0,
            atomic_ops: 0,
            atomic_hotness: 0.0,
            coalescing: 1.0,
            regs_per_thread: 32,
            shared_tile_reduction: 1.0,
            item_cycles: 0.0,
        }
    }
}

/// Per-component timing of one simulated kernel launch (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Fixed launch latency.
    pub t_launch: f64,
    /// Memory-traffic roof.
    pub t_mem: f64,
    /// FP-compute roof.
    pub t_compute: f64,
    /// Atomic-serialisation roof.
    pub t_atomic: f64,
    /// Longest per-thread serial chain.
    pub t_serial: f64,
    /// Block scheduling overhead.
    pub t_sched: f64,
    /// End-to-end kernel duration.
    pub total: f64,
}

/// Cap on the modelled atomic serialisation factor; beyond ~hundreds of
/// colliding writers the L2 write-combiner in real parts flattens the curve.
const MAX_CONFLICT_DEGREE: f64 = 256.0;

/// Window of atomics in flight that can collide with each other.
const ATOMIC_WINDOW: f64 = 128.0;

/// Computes the simulated duration of one kernel launch.
///
/// Returns a breakdown whose `total` is `+∞` when the configuration cannot
/// be scheduled at all (e.g. its shared-memory request prevents any block
/// from fitting on an SM).
pub fn kernel_duration(
    device: &DeviceSpec,
    config: &LaunchConfig,
    w: &KernelWorkload,
) -> CostBreakdown {
    let occ = occupancy(device, config, w.regs_per_thread);
    let t_launch = device.kernel_launch_us * 1e-6;
    if occ.blocks_per_sm == 0 {
        return CostBreakdown {
            t_launch,
            t_mem: f64::INFINITY,
            t_compute: 0.0,
            t_atomic: 0.0,
            t_serial: 0.0,
            t_sched: 0.0,
            total: f64::INFINITY,
        };
    }
    if w.work_items == 0 {
        return CostBreakdown {
            t_launch,
            t_mem: 0.0,
            t_compute: 0.0,
            t_atomic: 0.0,
            t_serial: 0.0,
            t_sched: 0.0,
            total: t_launch,
        };
    }

    // --- Memory roof: bandwidth saturates with resident parallelism. ---
    // Threads beyond the work size contribute no useful memory parallelism.
    let useful_resident = (occ.resident_threads.min(w.work_items)) as f64;
    let mem_eff = useful_resident / (useful_resident + device.latency_hiding_threads);
    let bw = device.mem_bandwidth_gbs * 1e9 * w.coalescing.clamp(0.01, 1.0) * mem_eff;
    let t_mem = (w.bytes_read + w.bytes_written) as f64 / bw;

    // --- Compute roof: only SMs that received blocks contribute. ---
    let used_sms = (config.grid.min(device.num_sms)) as f64;
    let occ_eff = occ.ratio / (occ.ratio + 0.25); // issue-efficiency saturation
    let peak = used_sms * device.cores_per_sm as f64 * device.clock_ghz * 1e9 * 2.0;
    let t_compute = w.flops as f64 / (peak * occ_eff.max(1e-3));

    // --- Atomic roof: contention serialises colliding updates. ---
    let effective_atomics = w.atomic_ops as f64 / w.shared_tile_reduction.max(1.0);
    let concurrent = useful_resident.min(ATOMIC_WINDOW);
    let conflict_degree =
        (1.0 + w.atomic_hotness.clamp(0.0, 1.0) * concurrent).min(MAX_CONFLICT_DEGREE);
    let atomic_rate = device.atomic_gops * 1e9 * mem_eff.max(0.05);
    let t_atomic = effective_atomics * conflict_degree / atomic_rate;

    // --- Per-thread serial chain: a tiny grid leaves each thread looping
    //     over many items whose pipeline latencies cannot all overlap. ---
    let total_threads = config.total_threads().max(1);
    let items_per_thread = w.work_items.div_ceil(total_threads);
    let t_serial = items_per_thread as f64 * w.item_cycles / (device.clock_ghz * 1e9);

    // --- Block scheduling overhead: every block costs the GigaThread
    //     engine a dispatch slot; SMs absorb them in parallel. ---
    let t_sched = config.grid as f64 * device.block_sched_us * 1e-6 / device.num_sms as f64;

    let body = t_mem.max(t_compute).max(t_atomic).max(t_serial);
    CostBreakdown {
        t_launch,
        t_mem,
        t_compute,
        t_atomic,
        t_serial,
        t_sched,
        total: t_launch + body + t_sched,
    }
}

/// Achieved GFLOP/s of a workload executed in `seconds`.
pub fn gflops(w: &KernelWorkload, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        w.flops as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    /// A medium MTTKRP-like workload: 1M nnz, rank 16.
    fn wl() -> KernelWorkload {
        KernelWorkload {
            work_items: 1_000_000,
            flops: 3 * 16 * 1_000_000,
            bytes_read: 212 * 1_000_000,
            bytes_written: 0,
            atomic_ops: 16 * 1_000_000,
            atomic_hotness: 1e-5,
            coalescing: 0.5,
            regs_per_thread: 40,
            shared_tile_reduction: 1.0,
            item_cycles: 120.0,
        }
    }

    #[test]
    fn tiny_launch_is_slow_medium_launch_is_fast() {
        let d = dev();
        let w = wl();
        let t_small = kernel_duration(&d, &LaunchConfig::new(32, 32), &w).total;
        let t_good = kernel_duration(&d, &LaunchConfig::new(4096, 256), &w).total;
        assert!(
            t_small > 5.0 * t_good,
            "tiny launch {t_small} should be much slower than {t_good}"
        );
    }

    #[test]
    fn huge_grid_declines_for_small_tensors() {
        let d = dev();
        let mut w = wl();
        w.work_items = 20_000; // small tensor
        w.flops = 3 * 16 * 20_000;
        w.bytes_read = 212 * 20_000;
        w.atomic_ops = 16 * 20_000;
        let t_mid = kernel_duration(&d, &LaunchConfig::new(1024, 256), &w).total;
        let t_huge = kernel_duration(&d, &LaunchConfig::new(1 << 17, 256), &w).total;
        assert!(
            t_huge > 1.3 * t_mid,
            "oversized grid {t_huge} should lose to {t_mid} on a small tensor"
        );
    }

    #[test]
    fn huge_grid_fine_for_large_tensors() {
        let d = dev();
        let mut w = wl();
        w.work_items = 100_000_000;
        w.flops = 3 * 16 * 100_000_000;
        w.bytes_read = 212 * 100_000_000;
        w.atomic_ops = 16 * 100_000_000;
        let t_mid = kernel_duration(&d, &LaunchConfig::new(1024, 256), &w).total;
        let t_huge = kernel_duration(&d, &LaunchConfig::new(1 << 17, 256), &w).total;
        // Once residency saturates, extra blocks become grid-stride loops:
        // the scheduling overhead must be negligible relative to the body.
        assert!(
            t_huge < 1.01 * t_mid,
            "oversized grid must be harmless on large tensors: {t_huge} vs {t_mid}"
        );
    }

    #[test]
    fn optimum_is_interior_not_extreme() {
        // The best configuration over the sweep must not sit at either
        // extreme of the grid axis for a small tensor — the Fig. 4 shape.
        let d = dev();
        let mut w = wl();
        w.work_items = 50_000;
        w.flops = 3 * 16 * 50_000;
        w.bytes_read = 212 * 50_000;
        w.atomic_ops = 16 * 50_000;
        let space = LaunchConfig::sweep_space(&d);
        let best = space
            .iter()
            .min_by(|a, b| {
                kernel_duration(&d, a, &w)
                    .total
                    .partial_cmp(&kernel_duration(&d, b, &w).total)
                    .unwrap()
            })
            .unwrap();
        assert!(best.grid > 32, "optimum grid should exceed the minimum");
        assert!(best.grid < (1 << 17), "optimum grid should be interior");
    }

    #[test]
    fn hot_atomics_penalise_and_tiling_recovers() {
        let d = dev();
        let cfg = LaunchConfig::new(4096, 256);
        let mut hot = wl();
        hot.atomic_hotness = 0.05; // skewed output rows
        let t_hot = kernel_duration(&d, &cfg, &hot).total;
        let t_cold = kernel_duration(&d, &cfg, &wl()).total;
        assert!(t_hot > 2.0 * t_cold, "hotness must hurt: {t_hot} vs {t_cold}");

        let mut tiled = hot;
        tiled.shared_tile_reduction = 16.0;
        let t_tiled = kernel_duration(&d, &cfg, &tiled).total;
        assert!(
            t_tiled < t_hot / 2.0,
            "shared tiling must recover atomic losses: {t_tiled} vs {t_hot}"
        );
    }

    #[test]
    fn unschedulable_config_is_infinite() {
        let d = dev();
        // 100 KB of shared memory per block with block=1024 -> but per-block
        // limit allows it; 100KB on a 128KB SM allows 1 block, so valid.
        // Use registers to make it unschedulable: 255 regs * 1024 threads.
        let cb = kernel_duration(&d, &LaunchConfig::new(64, 1024), &{
            let mut w = wl();
            w.regs_per_thread = 255;
            w
        });
        assert!(cb.total.is_infinite());
    }

    #[test]
    fn empty_workload_costs_only_launch() {
        let d = dev();
        let cb = kernel_duration(&d, &LaunchConfig::new(64, 64), &KernelWorkload::empty());
        assert!((cb.total - d.kernel_launch_us * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn duration_is_deterministic() {
        let d = dev();
        let cfg = LaunchConfig::new(2048, 128);
        let a = kernel_duration(&d, &cfg, &wl());
        let b = kernel_duration(&d, &cfg, &wl());
        assert_eq!(a, b);
    }

    #[test]
    fn gflops_inverse_of_time() {
        let w = wl();
        let g = gflops(&w, 1e-3);
        assert!((g - w.flops as f64 / 1e-3 / 1e9).abs() < 1e-9);
        assert_eq!(gflops(&w, 0.0), 0.0);
    }

    #[test]
    fn better_coalescing_is_faster() {
        let d = dev();
        let cfg = LaunchConfig::new(4096, 256);
        let mut scattered = wl();
        scattered.coalescing = 0.15;
        let t_s = kernel_duration(&d, &cfg, &scattered).total;
        let t_c = kernel_duration(&d, &cfg, &wl()).total;
        assert!(t_s > t_c);
    }

    #[test]
    fn weaker_device_is_slower() {
        let w = wl();
        let cfg = LaunchConfig::new(4096, 256);
        let t_3090 = kernel_duration(&DeviceSpec::rtx3090(), &cfg, &w).total;
        let t_3060 = kernel_duration(&DeviceSpec::rtx3060(), &cfg, &w).total;
        assert!(t_3060 > t_3090);
    }
}
