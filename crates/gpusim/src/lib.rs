//! # scalfrag-gpusim
//!
//! A deterministic GPU **execution simulator**: the hardware substrate of
//! this ScalFrag reproduction.
//!
//! The paper runs on an NVIDIA RTX 3090 with CUDA streams, asynchronous
//! copies and hand-tuned kernel launches. None of that is available to a
//! portable pure-Rust build, so this crate re-creates the *mechanisms* the
//! paper's results depend on:
//!
//! * [`DeviceSpec`] / [`HostSpec`] — parameterised hardware models with an
//!   RTX 3090 + i7-11700K preset mirroring Table II of the paper.
//! * [`LaunchConfig`] + [`occupancy`] — the `gridSize`/`blockSize` launch
//!   space and the SM occupancy rules (threads, blocks, shared memory,
//!   registers per SM) that make some configurations fast and others slow.
//! * [`cost`] — an analytic kernel timing model (memory traffic with
//!   latency-hiding efficiency, compute throughput, atomic contention,
//!   per-block scheduling overhead, wave quantisation, launch latency).
//!   This is what turns a launch configuration plus a workload description
//!   into a duration, and what gives Fig. 4 its tensor-dependent optimum.
//! * [`Gpu`] — CUDA-like streams, events, async H2D/D2H copies and kernel
//!   launches, resolved by an event-driven timeline simulation with one
//!   compute engine and dedicated H2D/D2H copy engines (PCIe).
//! * [`Timeline`] — the per-span execution record used for the time
//!   breakdowns of Fig. 5 and the overlap analysis of Fig. 10/11.
//!
//! Kernels are *functionally executed* on the host (optionally with rayon
//! inside the kernel body) so numeric results are real and testable; the
//! *simulated clock* is entirely analytic and therefore deterministic.

pub mod cost;
pub mod device;
pub mod gpu;
pub mod launch;
pub mod memory;
pub mod occupancy;
pub mod profiler;
pub mod racecheck;
pub mod timeline;
pub mod trace;

pub use cost::{kernel_duration, CostBreakdown, KernelWorkload};
pub use device::{DeviceSpec, HostSpec};
pub use gpu::{EventId, Gpu, OpId, StreamId};
pub use launch::LaunchConfig;
pub use memory::{size_class, Allocation, MemStats, MemoryPool, OutOfMemory, MIN_CLASS_BYTES};
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use profiler::{analyze_kernel, profile, KernelAnalysis, LabelStats, Profile};
pub use racecheck::{
    block_of_item, grid_stride_thread, AccessKind, AccessLog, AddrSpace, RaceConflict, RaceReport,
    SimThread,
};
pub use timeline::{Engine, Span, SpanKind, Timeline};
