//! Hardware models: the simulated GPU and the host CPU.
//!
//! The RTX 3090 / i7-11700K presets mirror Table II of the paper; other
//! presets exist so tests and ablations can check that the adaptive
//! launching strategy reacts to the *hardware*, not just the tensor.

/// Parameters of a simulated GPU.
///
/// All throughput numbers are *effective peaks*; the cost model in
/// [`crate::cost`] derates them by occupancy and access-pattern factors.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA GeForce RTX 3090"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Maximum shared memory per block in bytes.
    pub shared_mem_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// FP32 cores ("CUDA cores") per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Device (HBM/GDDR) bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Host→device PCIe bandwidth in GB/s (the paper measures 24.3 GB/s).
    pub pcie_h2d_gbs: f64,
    /// Device→host PCIe bandwidth in GB/s.
    pub pcie_d2h_gbs: f64,
    /// Fixed per-transfer latency in microseconds.
    pub pcie_latency_us: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
    /// Global-memory f32 atomic throughput in Gops/s (conflict-free).
    pub atomic_gops: f64,
    /// Per-resident-block scheduling overhead in microseconds; penalises
    /// launches with an enormous grid.
    pub block_sched_us: f64,
    /// Resident threads needed to reach ~50% of peak memory bandwidth
    /// (the latency-hiding knee of the bandwidth saturation curve).
    pub latency_hiding_threads: f64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU (Table II): RTX 3090 — 82 SMs,
    /// 10 496 CUDA cores, 1.4 GHz, 24 GB @ 936.2 GB/s, PCIe at 24.3 GB/s.
    pub fn rtx3090() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 3090",
            num_sms: 82,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 128 * 1024,
            shared_mem_per_block: 100 * 1024,
            registers_per_sm: 65536,
            cores_per_sm: 128,
            clock_ghz: 1.4,
            mem_bandwidth_gbs: 936.2,
            l2_bytes: 6 * 1024 * 1024,
            global_mem_bytes: 24 * 1024 * 1024 * 1024,
            pcie_h2d_gbs: 24.3,
            pcie_d2h_gbs: 24.3,
            pcie_latency_us: 10.0,
            kernel_launch_us: 5.0,
            atomic_gops: 100.0,
            block_sched_us: 0.02,
            latency_hiding_threads: 40_000.0,
        }
    }

    /// A mid-range part (RTX 3060-class) for hardware-sensitivity tests:
    /// fewer SMs, less bandwidth, smaller memory.
    pub fn rtx3060() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 3060",
            num_sms: 28,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 100 * 1024,
            shared_mem_per_block: 100 * 1024,
            registers_per_sm: 65536,
            cores_per_sm: 128,
            clock_ghz: 1.32,
            mem_bandwidth_gbs: 360.0,
            l2_bytes: 3 * 1024 * 1024,
            global_mem_bytes: 12 * 1024 * 1024 * 1024,
            pcie_h2d_gbs: 24.3,
            pcie_d2h_gbs: 24.3,
            pcie_latency_us: 10.0,
            kernel_launch_us: 5.0,
            atomic_gops: 50.0,
            block_sched_us: 0.02,
            latency_hiding_threads: 16_000.0,
        }
    }

    /// A datacenter part (A100-class): more SMs, HBM2e, bigger caches.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100-SXM4-40GB",
            num_sms: 108,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_block: 160 * 1024,
            registers_per_sm: 65536,
            cores_per_sm: 64,
            clock_ghz: 1.41,
            mem_bandwidth_gbs: 1555.0,
            l2_bytes: 40 * 1024 * 1024,
            global_mem_bytes: 40 * 1024 * 1024 * 1024,
            pcie_h2d_gbs: 24.3,
            pcie_d2h_gbs: 24.3,
            pcie_latency_us: 10.0,
            kernel_launch_us: 4.0,
            atomic_gops: 150.0,
            block_sched_us: 0.016,
            latency_hiding_threads: 64_000.0,
        }
    }

    /// The same device behind a host link of different bandwidth — how a
    /// multi-GPU node models PCIe contention: when several devices share
    /// the host's memory bandwidth, each sees a derated effective link.
    pub fn with_pcie_bandwidth(mut self, h2d_gbs: f64, d2h_gbs: f64) -> Self {
        assert!(h2d_gbs > 0.0 && d2h_gbs > 0.0, "link bandwidth must be positive");
        self.pcie_h2d_gbs = h2d_gbs;
        self.pcie_d2h_gbs = d2h_gbs;
        self
    }

    /// The same device slowed by a straggler derating `factor >= 1`:
    /// memory-side throughputs (device memory, PCIe, atomics) divide by
    /// the factor and fixed latencies multiply by it, modelling a
    /// thermally throttled or bus-contended card. Compute clocks and
    /// capacity limits are untouched, so launch-config validity is
    /// unchanged. Used by the fault injector's straggler events.
    pub fn derated(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0 && factor.is_finite(), "derate factor must be >= 1, got {factor}");
        self.mem_bandwidth_gbs /= factor;
        self.pcie_h2d_gbs /= factor;
        self.pcie_d2h_gbs /= factor;
        self.atomic_gops /= factor;
        self.pcie_latency_us *= factor;
        self.kernel_launch_us *= factor;
        self
    }

    /// Peak FP32 throughput in GFLOP/s (2 FLOPs per core per cycle, FMA).
    pub fn peak_gflops(&self) -> f64 {
        self.num_sms as f64 * self.cores_per_sm as f64 * self.clock_ghz * 2.0
    }

    /// Maximum resident threads across the whole device.
    pub fn max_resident_threads(&self) -> u64 {
        self.num_sms as u64 * self.max_threads_per_sm as u64
    }
}

/// Parameters of the host CPU executing the non-offloaded work (hybrid
/// execution, §IV's "parts with low parallelism to the CPU").
#[derive(Clone, Debug, PartialEq)]
pub struct HostSpec {
    /// Marketing name, e.g. `"Intel Core i7-11700K"`.
    pub name: &'static str,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Sustained all-core clock in GHz.
    pub clock_ghz: f64,
    /// Memory bandwidth in GB/s (Table II: 31.2 GB/s).
    pub mem_bandwidth_gbs: f64,
    /// FP32 FLOPs per core per cycle (AVX2 FMA ≈ 16).
    pub flops_per_cycle: f64,
}

impl HostSpec {
    /// The paper's host CPU (Table II): i7-11700K, 8C16T @ 3.6 GHz,
    /// 32 GB @ 31.2 GB/s.
    pub fn i7_11700k() -> Self {
        Self {
            name: "Intel Core i7-11700K",
            cores: 8,
            threads: 16,
            clock_ghz: 3.6,
            mem_bandwidth_gbs: 31.2,
            flops_per_cycle: 16.0,
        }
    }

    /// Peak FP32 throughput in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * self.flops_per_cycle
    }

    /// Analytic duration (seconds) of a host task reading `bytes` and
    /// executing `flops`, assuming 35% of peak compute and 70% of peak
    /// bandwidth (typical for streaming sparse codes).
    pub fn task_duration_s(&self, flops: u64, bytes: u64) -> f64 {
        let t_compute = flops as f64 / (self.peak_gflops() * 1e9 * 0.35);
        let t_mem = bytes as f64 / (self.mem_bandwidth_gbs * 1e9 * 0.7);
        t_compute.max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_matches_table2() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.num_sms, 82);
        assert_eq!(d.num_sms * d.cores_per_sm, 10_496);
        assert!((d.mem_bandwidth_gbs - 936.2).abs() < 1e-9);
        assert_eq!(d.global_mem_bytes, 24 * (1u64 << 30));
        assert!((d.pcie_h2d_gbs - 24.3).abs() < 1e-9);
        // ~29.4 TFLOPs FP32
        assert!((d.peak_gflops() - 29_388.8).abs() < 1.0);
    }

    #[test]
    fn i7_matches_table2() {
        let h = HostSpec::i7_11700k();
        assert_eq!(h.cores, 8);
        assert_eq!(h.threads, 16);
        assert!((h.mem_bandwidth_gbs - 31.2).abs() < 1e-9);
    }

    #[test]
    fn device_presets_are_ordered_by_capability() {
        let small = DeviceSpec::rtx3060();
        let big = DeviceSpec::rtx3090();
        let dc = DeviceSpec::a100();
        assert!(small.peak_gflops() < big.peak_gflops());
        assert!(small.mem_bandwidth_gbs < big.mem_bandwidth_gbs);
        assert!(big.mem_bandwidth_gbs < dc.mem_bandwidth_gbs);
        assert!(small.max_resident_threads() < dc.max_resident_threads());
    }

    #[test]
    fn derated_device_is_slower_but_still_valid() {
        let base = DeviceSpec::rtx3090();
        let slow = base.clone().derated(2.0);
        assert!((slow.mem_bandwidth_gbs - base.mem_bandwidth_gbs / 2.0).abs() < 1e-9);
        assert!((slow.pcie_h2d_gbs - base.pcie_h2d_gbs / 2.0).abs() < 1e-9);
        assert!((slow.pcie_latency_us - base.pcie_latency_us * 2.0).abs() < 1e-9);
        // Capacity limits unchanged: any config valid before stays valid.
        assert_eq!(slow.max_threads_per_block, base.max_threads_per_block);
        assert_eq!(slow.global_mem_bytes, base.global_mem_bytes);
        assert_eq!(slow.peak_gflops(), base.peak_gflops());
        // Identity derate is a no-op.
        assert_eq!(base.clone().derated(1.0), base);
    }

    #[test]
    fn host_task_duration_is_max_of_roofs() {
        let h = HostSpec::i7_11700k();
        // Pure compute task.
        let tc = h.task_duration_s(1_000_000_000, 0);
        // Pure memory task.
        let tm = h.task_duration_s(0, 1_000_000_000);
        let both = h.task_duration_s(1_000_000_000, 1_000_000_000);
        assert!(both >= tc.max(tm) - 1e-12);
        assert!(tc > 0.0 && tm > 0.0);
    }
}
