//! Execution timeline: the record of what ran where and when.
//!
//! The timeline is how the simulator reports results: the per-phase time
//! breakdown of Fig. 5 (`H2D ≫ kernel ≥ D2H`), the overlap ratios behind
//! the end-to-end speedups of Fig. 10, and the segment/stream interplay of
//! Fig. 11 all read straight off the spans collected here.

/// The hardware engine a span occupied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The host→device PCIe copy engine.
    H2D,
    /// The device→host PCIe copy engine.
    D2H,
    /// The SM array (kernel execution).
    Compute,
    /// The host CPU (hybrid execution / pre- and post-processing).
    Host,
}

/// What kind of operation a span represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Host→device transfer.
    CopyH2D,
    /// Device→host transfer.
    CopyD2H,
    /// Kernel execution.
    Kernel,
    /// Host-side task.
    HostTask,
}

/// One completed operation on the simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Submission-order identifier.
    pub op: u64,
    /// The stream the op was enqueued on.
    pub stream: u32,
    /// The engine it occupied.
    pub engine: Engine,
    /// Operation kind.
    pub kind: SpanKind,
    /// Human-readable label for reports.
    pub label: String,
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time (seconds).
    pub end: f64,
}

impl Span {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A completed simulation: all spans plus derived statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// All spans, in submission order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// End-to-end simulated time: the latest span end (0 when empty).
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy time of one engine (sum of span durations).
    pub fn engine_busy(&self, engine: Engine) -> f64 {
        self.spans.iter().filter(|s| s.engine == engine).map(Span::duration).sum()
    }

    /// Sum of all span durations (the serialized-execution lower bound on
    /// what a no-overlap schedule would take).
    pub fn total_busy(&self) -> f64 {
        self.spans.iter().map(Span::duration).sum()
    }

    /// Overlap ratio: how much of the work was hidden under other work —
    /// `1 - makespan / total_busy`, clamped to `[0, 1)`. Zero means fully
    /// serial; approaching 1 means near-perfect overlap.
    pub fn overlap_ratio(&self) -> f64 {
        let busy = self.total_busy();
        if busy <= 0.0 {
            0.0
        } else {
            (1.0 - self.makespan() / busy).max(0.0)
        }
    }

    /// Per-kind busy time `(h2d, kernel, d2h, host)` — the Fig. 5 bars.
    pub fn breakdown(&self) -> (f64, f64, f64, f64) {
        (
            self.engine_busy(Engine::H2D),
            self.engine_busy(Engine::Compute),
            self.engine_busy(Engine::D2H),
            self.engine_busy(Engine::Host),
        )
    }

    /// Checks structural sanity: spans have non-negative durations, and
    /// spans sharing an engine never overlap (each engine is exclusive).
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.end < s.start {
                return Err(format!("span {} ends before it starts", s.op));
            }
        }
        for engine in [Engine::H2D, Engine::D2H, Engine::Compute, Engine::Host] {
            let mut spans: Vec<&Span> = self.spans.iter().filter(|s| s.engine == engine).collect();
            spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in spans.windows(2) {
                if w[1].start < w[0].end - 1e-12 {
                    return Err(format!(
                        "engine {:?}: op {} (start {}) overlaps op {} (end {})",
                        engine, w[1].op, w[1].start, w[0].op, w[0].end
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders a proportional ASCII Gantt chart of the timeline, one row
    /// per engine — handy in examples and reports.
    pub fn ascii_gantt(&self, width: usize) -> String {
        let makespan = self.makespan();
        if makespan <= 0.0 || self.spans.is_empty() {
            return String::from("(empty timeline)\n");
        }
        let mut out = String::new();
        for (engine, tag) in [
            (Engine::H2D, "H2D    "),
            (Engine::Compute, "Kernel "),
            (Engine::D2H, "D2H    "),
            (Engine::Host, "Host   "),
        ] {
            let mut row = vec![b'.'; width];
            for s in self.spans.iter().filter(|s| s.engine == engine) {
                let a = ((s.start / makespan) * width as f64) as usize;
                let b = (((s.end / makespan) * width as f64).ceil() as usize).min(width);
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    *c = b'#';
                }
            }
            out.push_str(tag);
            out.push('|');
            out.push_str(std::str::from_utf8(&row).unwrap());
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(op: u64, engine: Engine, start: f64, end: f64) -> Span {
        Span {
            op,
            stream: 0,
            engine,
            kind: match engine {
                Engine::H2D => SpanKind::CopyH2D,
                Engine::D2H => SpanKind::CopyD2H,
                Engine::Compute => SpanKind::Kernel,
                Engine::Host => SpanKind::HostTask,
            },
            label: format!("op{op}"),
            start,
            end,
        }
    }

    #[test]
    fn makespan_and_busy() {
        let t = Timeline {
            spans: vec![
                span(0, Engine::H2D, 0.0, 2.0),
                span(1, Engine::Compute, 2.0, 3.0),
                span(2, Engine::D2H, 3.0, 3.5),
            ],
        };
        assert_eq!(t.makespan(), 3.5);
        assert_eq!(t.total_busy(), 3.5);
        assert_eq!(t.overlap_ratio(), 0.0, "fully serial schedule has no overlap");
        let (h2d, k, d2h, host) = t.breakdown();
        assert_eq!((h2d, k, d2h, host), (2.0, 1.0, 0.5, 0.0));
    }

    #[test]
    fn overlap_ratio_detects_pipelining() {
        // Two H2D+kernel pairs where transfer of segment 2 overlaps kernel 1.
        let t = Timeline {
            spans: vec![
                span(0, Engine::H2D, 0.0, 1.0),
                span(1, Engine::H2D, 1.0, 2.0),
                span(2, Engine::Compute, 1.0, 2.0),
                span(3, Engine::Compute, 2.0, 3.0),
            ],
        };
        assert_eq!(t.makespan(), 3.0);
        assert_eq!(t.total_busy(), 4.0);
        assert!((t.overlap_ratio() - 0.25).abs() < 1e-12);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_engine_overlap() {
        let t = Timeline {
            spans: vec![span(0, Engine::H2D, 0.0, 2.0), span(1, Engine::H2D, 1.0, 3.0)],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_negative_duration() {
        let t = Timeline { spans: vec![span(0, Engine::Compute, 2.0, 1.0)] };
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_timeline_is_safe() {
        let t = Timeline::default();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.overlap_ratio(), 0.0);
        assert!(t.validate().is_ok());
        assert!(t.ascii_gantt(40).contains("empty"));
    }

    #[test]
    fn gantt_renders_rows() {
        let t = Timeline {
            spans: vec![span(0, Engine::H2D, 0.0, 1.0), span(1, Engine::Compute, 1.0, 2.0)],
        };
        let g = t.ascii_gantt(20);
        assert!(g.contains("H2D"));
        assert!(g.contains("Kernel"));
        assert!(g.contains('#'));
    }
}
