//! The simulated GPU: CUDA-like streams, events, async copies and kernel
//! launches, resolved by a deterministic event-driven timeline simulation.
//!
//! Semantics mirror the CUDA runtime subset the paper uses (§IV-C):
//!
//! * operations enqueued on one stream execute in FIFO order;
//! * the H2D copy engine, the D2H copy engine and the SM array are three
//!   independent resources — ops on *different* streams overlap freely as
//!   long as they need different engines (this is exactly what makes the
//!   segmented pipeline hide transfer time);
//! * each engine itself is exclusive and serves ops in submission order
//!   (matching the hardware copy queues; concurrent kernels are not
//!   modelled — the paper launches one MTTKRP kernel per segment, so
//!   compute-engine exclusivity is the right fidelity);
//! * events ([`Gpu::record_event`] / [`Gpu::wait_event`]) provide
//!   cross-stream ordering.
//!
//! Operations may carry a closure that is *functionally executed* on the
//! host when the simulation resolves (in submission order, which respects
//! every dependency expressible through streams and events), so numeric
//! results are real while the clock stays analytic.

use crate::cost::{kernel_duration, KernelWorkload};
use crate::device::{DeviceSpec, HostSpec};
use crate::launch::LaunchConfig;
use crate::memory::MemoryPool;
use crate::timeline::{Engine, Span, SpanKind, Timeline};
use std::collections::HashMap;

/// Identifier of a stream created by [`Gpu::create_stream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Identifier of an event created by [`Gpu::record_event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Identifier of an enqueued operation (submission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpId(u64);

enum OpPayload {
    Copy { bytes: u64, h2d: bool },
    Kernel { config: LaunchConfig, workload: KernelWorkload },
    HostTask { flops: u64, bytes: u64 },
    EventRecord { event: EventId },
    Stall { seconds: f64 },
}

struct PendingOp {
    id: u64,
    stream: StreamId,
    label: String,
    payload: OpPayload,
    waits: Vec<EventId>,
    exec: Option<Box<dyn FnOnce() + Send>>,
}

/// The simulated GPU device and its host.
pub struct Gpu {
    spec: DeviceSpec,
    host: HostSpec,
    memory: MemoryPool,
    num_streams: u32,
    next_op: u64,
    next_event: u64,
    pending: Vec<PendingOp>,
    pending_waits: HashMap<StreamId, Vec<EventId>>,
    stream_ready: HashMap<StreamId, f64>,
    engine_ready: HashMap<Engine, f64>,
    event_time: HashMap<EventId, f64>,
    history: Timeline,
}

impl Gpu {
    /// Creates a GPU with the default host (i7-11700K, as in Table II).
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_host(spec, HostSpec::i7_11700k())
    }

    /// Creates a GPU paired with an explicit host model.
    pub fn with_host(spec: DeviceSpec, host: HostSpec) -> Self {
        let memory = MemoryPool::new(spec.global_mem_bytes);
        Self {
            spec,
            host,
            memory,
            num_streams: 0,
            next_op: 0,
            next_event: 0,
            pending: Vec::new(),
            pending_waits: HashMap::new(),
            stream_ready: HashMap::new(),
            engine_ready: HashMap::new(),
            event_time: HashMap::new(),
            history: Timeline::default(),
        }
    }

    /// The device model.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The host model.
    pub fn host_spec(&self) -> &HostSpec {
        &self.host
    }

    /// The device memory pool (allocate segment buffers against it).
    pub fn memory(&self) -> &MemoryPool {
        &self.memory
    }

    /// Creates a new stream.
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.num_streams);
        self.num_streams += 1;
        id
    }

    fn enqueue(
        &mut self,
        stream: StreamId,
        label: impl Into<String>,
        payload: OpPayload,
        exec: Option<Box<dyn FnOnce() + Send>>,
    ) -> OpId {
        assert!(stream.0 < self.num_streams, "unknown stream {stream:?}");
        let id = self.next_op;
        self.next_op += 1;
        let waits = self.pending_waits.remove(&stream).unwrap_or_default();
        self.pending.push(PendingOp { id, stream, label: label.into(), payload, waits, exec });
        OpId(id)
    }

    /// Enqueues an asynchronous host→device copy of `bytes`.
    pub fn h2d(&mut self, stream: StreamId, bytes: u64, label: impl Into<String>) -> OpId {
        self.enqueue(stream, label, OpPayload::Copy { bytes, h2d: true }, None)
    }

    /// Enqueues an H2D copy that also runs `f` when it resolves (e.g. to
    /// stage data into a device-side mirror buffer).
    pub fn h2d_exec(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> OpId {
        self.enqueue(stream, label, OpPayload::Copy { bytes, h2d: true }, Some(Box::new(f)))
    }

    /// Enqueues an asynchronous device→host copy of `bytes`.
    pub fn d2h(&mut self, stream: StreamId, bytes: u64, label: impl Into<String>) -> OpId {
        self.enqueue(stream, label, OpPayload::Copy { bytes, h2d: false }, None)
    }

    /// Enqueues a D2H copy with an execution closure.
    pub fn d2h_exec(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> OpId {
        self.enqueue(stream, label, OpPayload::Copy { bytes, h2d: false }, Some(Box::new(f)))
    }

    /// Enqueues a kernel launch with the given configuration and workload.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for this device.
    pub fn launch(
        &mut self,
        stream: StreamId,
        config: LaunchConfig,
        workload: KernelWorkload,
        label: impl Into<String>,
    ) -> OpId {
        config.validate(&self.spec).unwrap_or_else(|e| panic!("invalid launch {config}: {e}"));
        self.enqueue(stream, label, OpPayload::Kernel { config, workload }, None)
    }

    /// Enqueues a kernel launch whose body `f` is functionally executed when
    /// the simulation resolves (the numeric MTTKRP work).
    pub fn launch_exec(
        &mut self,
        stream: StreamId,
        config: LaunchConfig,
        workload: KernelWorkload,
        label: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> OpId {
        config.validate(&self.spec).unwrap_or_else(|e| panic!("invalid launch {config}: {e}"));
        self.enqueue(stream, label, OpPayload::Kernel { config, workload }, Some(Box::new(f)))
    }

    /// Enqueues a host-CPU task (hybrid execution) ordered within `stream`.
    pub fn host_task(
        &mut self,
        stream: StreamId,
        flops: u64,
        bytes: u64,
        label: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> OpId {
        self.enqueue(stream, label, OpPayload::HostTask { flops, bytes }, Some(Box::new(f)))
    }

    /// Enqueues a pure delay on `stream`: the stream's clock advances by
    /// `seconds` without occupying any engine. Models waits that burn no
    /// resource — retry backoff and fault downtime in the resilient
    /// executors.
    pub fn stall(&mut self, stream: StreamId, seconds: f64, label: impl Into<String>) -> OpId {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "stall must be a finite non-negative delay, got {seconds}"
        );
        self.enqueue(stream, label, OpPayload::Stall { seconds }, None)
    }

    /// Advances every stream's ready time to at least `t` seconds (the
    /// pending queue must be resolved first). Models a device idling
    /// until an external point in simulated time — waiting out a
    /// transient fault's downtime, or starting work re-placed from a
    /// failed peer only once that failure has been observed.
    pub fn advance_to(&mut self, t: f64) {
        assert!(self.pending.is_empty(), "synchronize before advancing the clock");
        assert!(t.is_finite(), "advance target must be finite, got {t}");
        for s in 0..self.num_streams {
            let e = self.stream_ready.entry(StreamId(s)).or_insert(0.0);
            *e = e.max(t);
        }
    }

    /// Current simulated clock: the latest ready time across streams and
    /// engines. Unlike [`Gpu::elapsed`] (which reads recorded spans) this
    /// includes pure stalls and [`Gpu::advance_to`] jumps, which occupy
    /// no engine and leave no span.
    pub fn clock(&self) -> f64 {
        let s = self.stream_ready.values().fold(0.0f64, |a, &b| a.max(b));
        let e = self.engine_ready.values().fold(0.0f64, |a, &b| a.max(b));
        s.max(e)
    }

    /// Records an event on `stream`: it completes when every op enqueued on
    /// `stream` so far has completed.
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        let event = EventId(self.next_event);
        self.next_event += 1;
        self.enqueue(stream, "event", OpPayload::EventRecord { event }, None);
        event
    }

    /// Makes every op enqueued on `stream` *after* this call wait for
    /// `event` (which must have been recorded already).
    ///
    /// # Panics
    /// Panics if the event has not been recorded.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) {
        assert!(event.0 < self.next_event, "event {event:?} was never recorded");
        self.pending_waits.entry(stream).or_default().push(event);
    }

    fn op_duration(&self, payload: &OpPayload) -> f64 {
        match payload {
            OpPayload::Copy { bytes, h2d } => {
                let bw = if *h2d { self.spec.pcie_h2d_gbs } else { self.spec.pcie_d2h_gbs };
                self.spec.pcie_latency_us * 1e-6 + *bytes as f64 / (bw * 1e9)
            }
            OpPayload::Kernel { config, workload } => {
                let t = kernel_duration(&self.spec, config, workload).total;
                assert!(t.is_finite(), "unschedulable kernel launch {config}");
                t
            }
            OpPayload::HostTask { flops, bytes } => self.host.task_duration_s(*flops, *bytes),
            OpPayload::EventRecord { .. } => 0.0,
            OpPayload::Stall { seconds } => *seconds,
        }
    }

    /// Resolves every pending operation: computes the simulated schedule,
    /// runs the execution closures (submission order — consistent with all
    /// stream/event dependencies), appends the spans to the history and
    /// returns the timeline of *this batch*.
    pub fn synchronize(&mut self) -> Timeline {
        let mut batch = Timeline::default();
        let pending = std::mem::take(&mut self.pending);
        for op in pending {
            let duration = self.op_duration(&op.payload);
            let stream_ready = self.stream_ready.get(&op.stream).copied().unwrap_or(0.0);
            let waits: f64 = op
                .waits
                .iter()
                .map(|e| {
                    *self
                        .event_time
                        .get(e)
                        .unwrap_or_else(|| panic!("wait on unresolved event {e:?}"))
                })
                .fold(0.0, f64::max);

            let (engine, kind) = match &op.payload {
                OpPayload::Copy { h2d: true, .. } => (Some(Engine::H2D), SpanKind::CopyH2D),
                OpPayload::Copy { h2d: false, .. } => (Some(Engine::D2H), SpanKind::CopyD2H),
                OpPayload::Kernel { .. } => (Some(Engine::Compute), SpanKind::Kernel),
                OpPayload::HostTask { .. } => (Some(Engine::Host), SpanKind::HostTask),
                OpPayload::EventRecord { .. } | OpPayload::Stall { .. } => (None, SpanKind::Kernel),
            };

            let engine_ready =
                engine.and_then(|e| self.engine_ready.get(&e).copied()).unwrap_or(0.0);
            let start = stream_ready.max(engine_ready).max(waits);
            let end = start + duration;

            self.stream_ready.insert(op.stream, end);
            if let Some(e) = engine {
                self.engine_ready.insert(e, end);
                let span = Span {
                    op: op.id,
                    stream: op.stream.0,
                    engine: e,
                    kind,
                    label: op.label,
                    start,
                    end,
                };
                batch.spans.push(span.clone());
                self.history.spans.push(span);
            }
            if let OpPayload::EventRecord { event } = op.payload {
                self.event_time.insert(event, end);
            }
            if let Some(f) = op.exec {
                f();
            }
        }
        batch
    }

    /// The accumulated timeline across all synchronizations.
    pub fn full_timeline(&self) -> &Timeline {
        &self.history
    }

    /// Current simulated time (max readiness over streams and engines).
    pub fn elapsed(&self) -> f64 {
        self.history.makespan()
    }

    /// Clears the simulated clock and history while keeping streams and
    /// memory accounting (start a fresh experiment on a warm device).
    pub fn reset_clock(&mut self) {
        assert!(self.pending.is_empty(), "cannot reset with pending operations");
        self.stream_ready.clear();
        self.engine_ready.clear();
        self.event_time.clear();
        self.pending_waits.clear();
        self.history = Timeline::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::rtx3090())
    }

    fn small_kernel(items: u64) -> KernelWorkload {
        let mut w = KernelWorkload::empty();
        w.work_items = items;
        w.flops = items * 48;
        w.bytes_read = items * 100;
        w.item_cycles = 100.0;
        w
    }

    #[test]
    fn copy_duration_matches_bandwidth() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 243_000_000, "h2d"); // 243 MB at 24.3 GB/s = 10 ms
        let t = g.synchronize();
        let span = &t.spans[0];
        assert!((span.duration() - (0.010 + 10e-6)).abs() < 1e-9);
    }

    #[test]
    fn same_stream_is_fifo() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 1_000_000, "a");
        g.launch(s, LaunchConfig::new(256, 256), small_kernel(100_000), "k");
        g.d2h(s, 1_000_000, "b");
        let t = g.synchronize();
        assert!(t.validate().is_ok());
        for w in t.spans.windows(2) {
            assert!(w[1].start >= w[0].end - 1e-15, "FIFO violated");
        }
    }

    #[test]
    fn different_streams_overlap_on_different_engines() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        // Big copy on s0 and a kernel on s1: they should overlap fully.
        g.h2d(s0, 100_000_000, "copy");
        g.launch(s1, LaunchConfig::new(4096, 256), small_kernel(10_000_000), "k");
        let t = g.synchronize();
        let copy = &t.spans[0];
        let kernel = &t.spans[1];
        assert_eq!(copy.start, 0.0);
        assert_eq!(kernel.start, 0.0, "independent engines must start together");
        assert!(t.overlap_ratio() > 0.0);
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.h2d(s0, 50_000_000, "c0");
        g.h2d(s1, 50_000_000, "c1");
        let t = g.synchronize();
        assert!(t.spans[1].start >= t.spans[0].end - 1e-15, "one H2D engine only");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn events_order_across_streams() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.h2d(s0, 100_000_000, "copy");
        let ev = g.record_event(s0);
        g.wait_event(s1, ev);
        g.launch(s1, LaunchConfig::new(256, 256), small_kernel(1_000), "k");
        let t = g.synchronize();
        let copy_end = t.spans[0].end;
        let kernel = t.spans.iter().find(|s| s.kind == SpanKind::Kernel).unwrap();
        assert!(kernel.start >= copy_end - 1e-15, "kernel must wait for the event");
    }

    #[test]
    #[should_panic(expected = "never recorded")]
    fn waiting_on_unrecorded_event_panics() {
        let mut g = gpu();
        let s = g.create_stream();
        g.wait_event(s, EventId(42));
    }

    #[test]
    fn closures_execute_in_dependency_order() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));

        let l = Arc::clone(&log);
        g.h2d_exec(s0, 1000, "copy", move || l.lock().push("h2d"));
        let ev = g.record_event(s0);
        g.wait_event(s1, ev);
        let l = Arc::clone(&log);
        g.launch_exec(s1, LaunchConfig::new(32, 32), small_kernel(10), "k", move || {
            l.lock().push("kernel")
        });
        g.synchronize();
        assert_eq!(*log.lock(), vec!["h2d", "kernel"]);
    }

    #[test]
    fn host_tasks_run_on_their_own_engine() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host_task(s0, 1_000_000, 1_000_000, "cpu", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        g.launch(s1, LaunchConfig::new(256, 256), small_kernel(1_000_000), "k");
        let t = g.synchronize();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        let host = t.spans.iter().find(|s| s.engine == Engine::Host).unwrap();
        let kern = t.spans.iter().find(|s| s.engine == Engine::Compute).unwrap();
        assert_eq!(host.start, 0.0);
        assert_eq!(kern.start, 0.0, "host and device work overlap");
    }

    #[test]
    fn synchronize_batches_accumulate_history() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 1_000_000, "a");
        let t1 = g.synchronize();
        g.h2d(s, 1_000_000, "b");
        let t2 = g.synchronize();
        assert_eq!(t1.spans.len(), 1);
        assert_eq!(t2.spans.len(), 1);
        assert_eq!(g.full_timeline().spans.len(), 2);
        // Second batch continues after the first on the same clock.
        assert!(t2.spans[0].start >= t1.spans[0].end - 1e-15);
        g.reset_clock();
        assert_eq!(g.full_timeline().spans.len(), 0);
        assert_eq!(g.elapsed(), 0.0);
    }

    #[test]
    fn deterministic_schedules() {
        let run = || {
            let mut g = gpu();
            let streams: Vec<StreamId> = (0..4).map(|_| g.create_stream()).collect();
            for (i, &s) in streams.iter().enumerate() {
                g.h2d(s, 10_000_000 + i as u64 * 1000, format!("c{i}"));
                g.launch(s, LaunchConfig::new(1024, 256), small_kernel(1_000_000), format!("k{i}"));
                g.d2h(s, 1_000_000, format!("d{i}"));
            }
            g.synchronize()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stalls_delay_the_stream_without_occupying_engines() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.h2d(s1, 1_000_000, "other-stream");
        g.stall(s0, 0.5, "backoff");
        g.h2d(s0, 1_000_000, "after-stall");
        let t = g.synchronize();
        let delayed = t.spans.iter().find(|sp| sp.label == "after-stall").unwrap();
        let other = t.spans.iter().find(|sp| sp.label == "other-stream").unwrap();
        assert!(delayed.start >= 0.5, "stall must push the stream's next op");
        assert_eq!(other.start, 0.0, "a stall must not block the H2D engine");
        assert_eq!(t.spans.len(), 2, "stalls leave no span");
        assert!(g.clock() >= 0.5);
    }

    #[test]
    fn advance_to_jumps_every_stream_forward() {
        let mut g = gpu();
        let s0 = g.create_stream();
        let s1 = g.create_stream();
        g.h2d(s0, 1_000_000, "a");
        g.synchronize();
        let before = g.clock();
        g.advance_to(before + 1.0);
        assert!((g.clock() - (before + 1.0)).abs() < 1e-12);
        g.advance_to(0.5); // never rewinds
        assert!((g.clock() - (before + 1.0)).abs() < 1e-12);
        g.h2d(s1, 1_000_000, "b");
        let t = g.synchronize();
        assert!(t.spans[0].start >= before + 1.0, "post-jump ops start after the jump");
    }

    #[test]
    #[should_panic(expected = "synchronize before advancing")]
    fn advance_to_refuses_pending_work() {
        let mut g = gpu();
        let s = g.create_stream();
        g.h2d(s, 1_000, "a");
        g.advance_to(1.0);
    }

    #[test]
    fn pipelined_segments_beat_serial_execution() {
        // The §IV-C claim in miniature: 4 segments on 4 streams vs one
        // stream. Total work identical; pipelining must shrink makespan.
        let bytes = 100_000_000u64;
        let work = small_kernel(10_000_000);
        let cfg = LaunchConfig::new(4096, 256);

        let mut serial = gpu();
        let s = serial.create_stream();
        for i in 0..4 {
            serial.h2d(s, bytes / 4, format!("c{i}"));
            serial.launch(s, cfg, work, format!("k{i}"));
        }
        let t_serial = serial.synchronize().makespan();

        let mut piped = gpu();
        let streams: Vec<StreamId> = (0..4).map(|_| piped.create_stream()).collect();
        for (i, &st) in streams.iter().enumerate() {
            piped.h2d(st, bytes / 4, format!("c{i}"));
            piped.launch(st, cfg, work, format!("k{i}"));
        }
        let t_piped = piped.synchronize().makespan();

        assert!(t_piped < t_serial * 0.95, "pipelining should overlap: {t_piped} vs {t_serial}");
    }
}
