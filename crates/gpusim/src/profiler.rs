//! An `nvprof`-style profiler over simulated timelines: per-label
//! aggregation, achieved-bandwidth/occupancy estimates and a formatted
//! report. Used by the harnesses and handy when tuning the cost model.

use crate::cost::{kernel_duration, CostBreakdown, KernelWorkload};
use crate::device::DeviceSpec;
use crate::launch::LaunchConfig;
use crate::timeline::{SpanKind, Timeline};
use std::collections::BTreeMap;

/// Aggregated statistics for one span label.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelStats {
    /// Number of spans with this label.
    pub count: usize,
    /// Total busy seconds.
    pub total_s: f64,
    /// Minimum span duration.
    pub min_s: f64,
    /// Maximum span duration.
    pub max_s: f64,
}

impl Default for LabelStats {
    /// The empty aggregate. `min_s` starts at `+∞` so the first recorded
    /// sample always becomes the minimum — a 0.0 default would pin the
    /// minimum below every real duration.
    fn default() -> Self {
        Self { count: 0, total_s: 0.0, min_s: f64::INFINITY, max_s: 0.0 }
    }
}

impl LabelStats {
    /// Folds one span duration into the aggregate.
    pub fn record(&mut self, duration_s: f64) {
        self.count += 1;
        self.total_s += duration_s;
        self.min_s = self.min_s.min(duration_s);
        self.max_s = self.max_s.max(duration_s);
    }

    /// Mean span duration.
    pub fn avg_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// A profile of one timeline.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-label statistics (sorted by label).
    pub by_label: BTreeMap<String, LabelStats>,
    /// Per-kind totals.
    pub kernel_s: f64,
    /// Total H2D copy time.
    pub h2d_s: f64,
    /// Total D2H copy time.
    pub d2h_s: f64,
    /// Total host-task time.
    pub host_s: f64,
    /// End-to-end makespan.
    pub makespan_s: f64,
}

/// Builds a profile from a timeline.
pub fn profile(timeline: &Timeline) -> Profile {
    let mut p = Profile { makespan_s: timeline.makespan(), ..Default::default() };
    for span in &timeline.spans {
        let d = span.duration();
        match span.kind {
            SpanKind::Kernel => p.kernel_s += d,
            SpanKind::CopyH2D => p.h2d_s += d,
            SpanKind::CopyD2H => p.d2h_s += d,
            SpanKind::HostTask => p.host_s += d,
        }
        p.by_label.entry(span.label.clone()).or_default().record(d);
    }
    p
}

impl Profile {
    /// Formats an nvprof-like table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "makespan {:.3}ms | kernels {:.3}ms, H2D {:.3}ms, D2H {:.3}ms, host {:.3}ms\n",
            self.makespan_s * 1e3,
            self.kernel_s * 1e3,
            self.h2d_s * 1e3,
            self.d2h_s * 1e3,
            self.host_s * 1e3
        ));
        out.push_str(&format!(
            "{:<32} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
            "label", "count", "total", "avg", "min", "max"
        ));
        for (label, s) in &self.by_label {
            out.push_str(&format!(
                "{:<32} {:>6} {:>10.1}µs {:>10.1}µs {:>10.1}µs {:>10.1}µs\n",
                label,
                s.count,
                s.total_s * 1e6,
                s.avg_s() * 1e6,
                s.min_s * 1e6,
                s.max_s * 1e6
            ));
        }
        out
    }
}

/// A "speed-of-light" analysis of one kernel launch: which roof binds and
/// how far from the device peaks it runs — the explanation tool for
/// Fig. 4 cells.
#[derive(Clone, Debug)]
pub struct KernelAnalysis {
    /// Cost breakdown of the launch.
    pub breakdown: CostBreakdown,
    /// Which component bounds the kernel body.
    pub bound_by: &'static str,
    /// Achieved fraction of peak memory bandwidth.
    pub bandwidth_utilisation: f64,
    /// Achieved fraction of peak FP32 throughput.
    pub compute_utilisation: f64,
}

/// Analyses one kernel launch.
pub fn analyze_kernel(
    device: &DeviceSpec,
    config: &LaunchConfig,
    workload: &KernelWorkload,
) -> KernelAnalysis {
    let b = kernel_duration(device, config, workload);
    let body = [
        (b.t_mem, "memory"),
        (b.t_compute, "compute"),
        (b.t_atomic, "atomics"),
        (b.t_serial, "serial-chain"),
    ];
    let bound_by = body
        .iter()
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .map(|&(_, n)| n)
        .unwrap_or("memory");
    let bytes = (workload.bytes_read + workload.bytes_written) as f64;
    let bandwidth_utilisation = if b.total.is_finite() && b.total > 0.0 {
        (bytes / b.total) / (device.mem_bandwidth_gbs * 1e9)
    } else {
        0.0
    };
    let compute_utilisation = if b.total.is_finite() && b.total > 0.0 {
        (workload.flops as f64 / b.total) / (device.peak_gflops() * 1e9)
    } else {
        0.0
    };
    KernelAnalysis { breakdown: b, bound_by, bandwidth_utilisation, compute_utilisation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::Gpu;

    #[test]
    fn profile_aggregates_labels() {
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        gpu.h2d(s, 10_000_000, "seg H2D");
        gpu.h2d(s, 20_000_000, "seg H2D");
        gpu.d2h(s, 1_000_000, "out D2H");
        let t = gpu.synchronize();
        let p = profile(&t);
        assert_eq!(p.by_label["seg H2D"].count, 2);
        assert!(p.by_label["seg H2D"].max_s > p.by_label["seg H2D"].min_s);
        assert!(p.h2d_s > p.d2h_s);
        assert!((p.makespan_s - t.makespan()).abs() < 1e-15);
        let rendered = p.render();
        assert!(rendered.contains("seg H2D") && rendered.contains("out D2H"));
    }

    #[test]
    fn default_label_stats_take_min_from_first_sample() {
        // Regression: `min_s` used to default to 0.0, so recording into a
        // default-constructed aggregate could never raise the minimum
        // above zero.
        let mut s = LabelStats::default();
        s.record(2.0);
        assert_eq!(s.min_s, 2.0, "first sample must become the minimum");
        assert_eq!(s.max_s, 2.0);
        s.record(3.0);
        assert_eq!(s.min_s, 2.0);
        assert_eq!(s.max_s, 3.0);
        assert_eq!(s.count, 2);
        assert!((s.avg_s() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn analysis_identifies_the_binding_roof() {
        let d = DeviceSpec::rtx3090();
        let mut w = KernelWorkload::empty();
        w.work_items = 1_000_000;
        w.bytes_read = 500_000_000; // clearly memory-bound
        w.flops = 1_000;
        let a = analyze_kernel(&d, &LaunchConfig::new(4096, 256), &w);
        assert_eq!(a.bound_by, "memory");
        assert!(a.bandwidth_utilisation > 0.1 && a.bandwidth_utilisation <= 1.0);
        assert!(a.compute_utilisation < 1e-3);

        let mut w2 = KernelWorkload::empty();
        w2.work_items = 1_000_000;
        w2.flops = 50_000_000_000; // clearly compute-bound
        w2.bytes_read = 1_000;
        let a2 = analyze_kernel(&d, &LaunchConfig::new(4096, 256), &w2);
        assert_eq!(a2.bound_by, "compute");
    }

    #[test]
    fn utilisations_are_bounded() {
        let d = DeviceSpec::rtx3090();
        let mut w = KernelWorkload::empty();
        w.work_items = 10_000_000;
        w.bytes_read = 2_000_000_000;
        w.flops = 1_000_000_000;
        w.atomic_ops = 10_000_000;
        for cfg in LaunchConfig::sweep_space(&d).iter().step_by(7) {
            let a = analyze_kernel(&d, cfg, &w);
            assert!(a.bandwidth_utilisation <= 1.0 + 1e-9, "{cfg}");
            assert!(a.compute_utilisation <= 1.0 + 1e-9, "{cfg}");
        }
    }
}
