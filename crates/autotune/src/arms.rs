//! Verdict arms: which *kernel flavor* should ScalFrag launch?
//!
//! The launch predictor (§IV-B) answers "which `<<<grid, block>>>`?"; this
//! module answers the question one level up — which of the four kernel arms
//! (atomic COO, shared-memory tiled, load-balanced segmented scan, FLYCOO
//! mode-agnostic) the adaptive launcher should dispatch for a given
//! `(tensor, mode, rank)` problem. The decision is a threshold rule over
//! the quantized [`FeatureKey`] buckets, calibrated against the gpusim
//! cost-model argmin (see the tests, which enforce the agreement).
//!
//! ## Why thresholds, and which ones
//!
//! Plain Zipf slice skew does **not** defeat the tiled kernel: its
//! per-block shared-memory tile pre-reduces `avg_nnz_per_slice` entries
//! (capped at `block/4 = 64`) before touching global memory, and Zipf skew
//! raises the average *together with* the hotspot, so the atomic roof stays
//! below the memory roof at every exponent. The regime where tiled
//! genuinely collapses — and the segmented scan wins — is a **dominant
//! slice over a sparse tail**: one output row holding ≳35 % of the
//! non-zeros while the remaining slices hold a handful each. Then the tile
//! reduction is tiny (avg ≈ a few) but the contention degree is huge
//! (Herfindahl hotness ≳ 0.15), and the modelled tiled time grows 2–8×
//! past the balanced arm, which performs no output atomics at all beyond
//! two carry cells per chunk.
//!
//! In bucket space that regime is the conjunction of three tests:
//!
//! 1. **skew guard** — `gini_bucket ≥ 4` (Gini ≥ 0.5) or
//!    `fiber_imbalance_bucket ≥ 4` (max/avg fiber ≥ 16): some imbalance
//!    exists at all. Uniform tensors exit here.
//! 2. **dominant share** — `2·imbalance_bucket − slices_bucket ≥ −3`.
//!    `imbalance_bucket ≈ log2(max/avg)` and `slices_bucket/2 ≈
//!    log2(numSlices)`, so the left side is `2·log2(maxShare)`: the test
//!    asks for a single slice holding ≳ 2^(−1.5) ≈ 35 % of the non-zeros.
//!    Zipf tensors fail it (mass spread over many hot slices).
//! 3. **sparse tail** — `nnz_bucket − 2·slices_bucket < 24`, i.e.
//!    `avg_nnz_per_slice < 2⁶ = 64`: the average sits below the tiled
//!    kernel's block-reduction cap, so tiled cannot amortise the hotspot
//!    into its shared tile.
//!
//! When all three hold the verdict is [`KernelFlavor::Balanced`]. When the
//! caller's objective is a full CPD-ALS sweep over every mode
//! ([`MttkrpObjective::AllModes`]) and the balanced arm is not forced, the
//! verdict is [`KernelFlavor::ModeAgnostic`] — one FLYCOO copy serves all
//! modes without re-tiling, trading a gather per entry for `N−1` avoided
//! re-sorts. Otherwise the verdict is the tiled baseline.

use crate::sweep::KernelFlavor;
use scalfrag_gpusim::{kernel_duration, DeviceSpec, LaunchConfig};
use scalfrag_kernels::SegmentStats;
use scalfrag_tensor::FeatureKey;

/// Skew guard: minimum `gini_bucket` (eighths of the slice-population
/// Gini) for the balanced arm to be considered — Gini ≥ 0.5.
pub const GINI_SKEW_BUCKET: i32 = 4;

/// Skew guard (fiber axis): minimum `fiber_imbalance_bucket` (whole
/// octaves of max/avg fiber population) — max fiber ≥ 16× the average.
pub const FIBER_SKEW_BUCKET: i32 = 4;

/// Dominant-share test: `2·imbalance_bucket − slices_bucket` must reach
/// this margin, i.e. the largest slice holds ≳ 2^(−1.5) ≈ 35 % of nnz.
pub const DOMINANT_SHARE_MARGIN: i32 = -3;

/// Sparse-tail test: `nnz_bucket − 2·slices_bucket` (= 4·log2 of the
/// average slice population) must stay below this, i.e. avg < 2⁶ = 64 —
/// the tiled kernel's per-block reduction cap at the default block size.
pub const AVG_BELOW_TILE_CAP: i32 = 24;

/// What the caller is optimising for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MttkrpObjective {
    /// One MTTKRP along a single mode (the tensor is already, or will be,
    /// tiled for that mode).
    SingleMode,
    /// A full CPD-ALS iteration: MTTKRP along *every* mode, where re-tiling
    /// per mode is a real cost the FLYCOO format avoids.
    AllModes,
}

/// The predictor's kernel-arm decision plus the rule that fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArmVerdict {
    /// The chosen kernel arm.
    pub flavor: KernelFlavor,
    /// Human-readable name of the decisive rule (stable; used in reports).
    pub reason: &'static str,
}

/// Decides the kernel arm for one quantized planning problem.
pub fn predict_arm(key: &FeatureKey, objective: MttkrpObjective) -> ArmVerdict {
    let skewed =
        key.gini_bucket >= GINI_SKEW_BUCKET || key.fiber_imbalance_bucket >= FIBER_SKEW_BUCKET;
    let dominant_share = 2 * key.imbalance_bucket - key.slices_bucket >= DOMINANT_SHARE_MARGIN;
    let sparse_tail = key.nnz_bucket - 2 * key.slices_bucket < AVG_BELOW_TILE_CAP;
    if skewed && dominant_share && sparse_tail {
        return ArmVerdict { flavor: KernelFlavor::Balanced, reason: "dominant-slice-sparse-tail" };
    }
    if objective == MttkrpObjective::AllModes {
        return ArmVerdict { flavor: KernelFlavor::ModeAgnostic, reason: "all-modes-no-retiling" };
    }
    ArmVerdict { flavor: KernelFlavor::Tiled, reason: "tiled-baseline" }
}

/// Ground truth for the threshold rule: the argmin of the gpusim cost
/// model over the single-mode arms at one launch configuration.
///
/// The mode-agnostic arm is excluded — its value is the avoided re-tiling
/// across modes, which a single-mode duration cannot see.
pub fn modelled_best_arm(
    device: &DeviceSpec,
    stats: &SegmentStats,
    rank: u32,
    base: LaunchConfig,
) -> (KernelFlavor, f64) {
    [KernelFlavor::CooAtomic, KernelFlavor::Tiled, KernelFlavor::Balanced]
        .into_iter()
        .map(|f| {
            let cfg = f.config(base, rank);
            let w = match f {
                KernelFlavor::CooAtomic => {
                    scalfrag_kernels::workload::coo_atomic_workload(stats, rank)
                }
                KernelFlavor::Tiled => {
                    scalfrag_kernels::workload::tiled_workload(stats, rank, cfg.block)
                }
                KernelFlavor::Balanced => scalfrag_balance::balanced_workload(stats, rank),
                KernelFlavor::ModeAgnostic => unreachable!(),
            };
            (f, kernel_duration(device, &cfg, &w).total)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
}

/// Minimum modelled transfer speedup before the serving layer prefers a
/// batch-fused dispatch over solo dispatches. Below this the fused plan's
/// extra formation wait buys nothing measurable.
pub const BATCH_SPEEDUP_GATE: f64 = 1.05;

/// Modelled transfer-side speedup of dispatching `group` compatible jobs
/// as **one** batch-fused plan versus `group` solo dispatches.
///
/// Solo, every job re-uploads the shared factor set: per-job transfer is
/// `F + T` (factor bytes + mean tensor bytes). Fused, the factors cross
/// PCIe once and amortise over the group: `F/g + T`. The ratio is the
/// speedup of the H2D-bound front of the pipeline — the part batching
/// actually changes; kernels and D2H are per-job either way.
pub fn batched_transfer_speedup(
    factor_bytes: usize,
    mean_tensor_bytes: usize,
    group: usize,
) -> f64 {
    let g = group.max(1) as f64;
    let f = factor_bytes as f64;
    let t = mean_tensor_bytes as f64;
    if f + t <= 0.0 {
        return 1.0;
    }
    (f + t) / (f / g + t)
}

/// The batching arm decision: fuse when the modelled transfer speedup
/// clears [`BATCH_SPEEDUP_GATE`]. Factor-light workloads (huge tensors,
/// small rank) keep solo dispatch — there the shared upload is noise and
/// fusing only adds formation wait.
pub fn prefer_batched(factor_bytes: usize, mean_tensor_bytes: usize, group: usize) -> bool {
    group > 1
        && batched_transfer_speedup(factor_bytes, mean_tensor_bytes, group) >= BATCH_SPEEDUP_GATE
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use scalfrag_tensor::{gen, CooTensor};

    /// A dominant slice (pct % of nnz in one mode-0 row) over a uniform
    /// sparse tail — the corpus `one-fiber-heavy` / `dense-slice` regime.
    fn heavy_slice(dims: &[u32], nnz: usize, pct: usize, seed: u64) -> CooTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = CooTensor::new(dims);
        let hot = rng.gen_range(0..dims[0]);
        for i in 0..nnz {
            let v = rng.gen::<f32>() * 0.999 + 1e-3;
            let mut c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
            if i * 100 < nnz * pct {
                c[0] = hot;
            }
            t.push(&c, v);
        }
        t
    }

    fn verdict_and_truth(t: &CooTensor) -> (ArmVerdict, KernelFlavor, f64, f64) {
        let d = DeviceSpec::rtx3090();
        let base = LaunchConfig::new(1024, 256);
        let stats = SegmentStats::compute(t, 0);
        let key = FeatureKey::of(t, 0, 16);
        let v = predict_arm(&key, MttkrpObjective::SingleMode);
        let (best, t_best) = modelled_best_arm(&d, &stats, 16, base);
        let t_bal = KernelFlavor::Balanced.duration(&d, &stats, 16, base);
        (v, best, t_best, t_bal)
    }

    #[test]
    fn heavy_slice_flips_to_balanced_and_the_model_agrees() {
        for pct in [40, 50, 60] {
            let t = heavy_slice(&[20_000, 200, 200], 100_000, pct, 5);
            let (v, best, _, _) = verdict_and_truth(&t);
            assert_eq!(v.flavor, KernelFlavor::Balanced, "pct={pct}");
            assert_eq!(v.reason, "dominant-slice-sparse-tail");
            assert_eq!(best, KernelFlavor::Balanced, "cost-model argmin, pct={pct}");
        }
    }

    #[test]
    fn balanced_speedup_on_heavy_slice_exceeds_the_gate() {
        // The bench gate: ≥ 1.2× modelled speedup over the best previous
        // arm (min of COO and tiled) on the skewed preset.
        let d = DeviceSpec::rtx3090();
        let base = LaunchConfig::new(1024, 256);
        let t = heavy_slice(&[20_000, 200, 200], 100_000, 60, 5);
        let stats = SegmentStats::compute(&t, 0);
        let coo = KernelFlavor::CooAtomic.duration(&d, &stats, 16, base);
        let tiled = KernelFlavor::Tiled.duration(&d, &stats, 16, base);
        let bal = KernelFlavor::Balanced.duration(&d, &stats, 16, base);
        assert!(
            coo.min(tiled) / bal >= 1.2,
            "modelled speedup {:.2} below the 1.2x gate",
            coo.min(tiled) / bal
        );
    }

    #[test]
    fn uniform_stays_tiled_and_the_model_agrees() {
        let t = gen::uniform(&[20_000, 200, 200], 100_000, 5);
        let (v, best, _, _) = verdict_and_truth(&t);
        assert_eq!(v.flavor, KernelFlavor::Tiled);
        assert_eq!(best, KernelFlavor::Tiled);
    }

    #[test]
    fn plain_zipf_stays_tiled_because_the_tile_soaks_it() {
        // Zipf raises the hotspot *and* the average slice population
        // together; the tiled kernel's block reduction absorbs the
        // contention, so the predictor must NOT flip on gini alone.
        for skew in [0.8, 1.1, 1.6, 2.0] {
            let t = gen::zipf_slices(&[20_000, 200, 200], 100_000, skew, 5);
            let (v, best, _, _) = verdict_and_truth(&t);
            assert_eq!(v.flavor, KernelFlavor::Tiled, "skew={skew}");
            assert_eq!(best, KernelFlavor::Tiled, "cost-model argmin, skew={skew}");
        }
    }

    #[test]
    fn moderate_concentration_stays_tiled() {
        // 30 % in one slice is below the ~35 % dominant-share threshold,
        // and the cost model indeed keeps tiled ahead there.
        let t = heavy_slice(&[2_000, 64, 64], 20_000, 30, 7);
        let (v, best, _, _) = verdict_and_truth(&t);
        assert_eq!(v.flavor, KernelFlavor::Tiled);
        assert_eq!(best, KernelFlavor::Tiled);
    }

    #[test]
    fn all_modes_objective_prefers_flycoo_when_not_skew_forced() {
        let uni = gen::uniform(&[200, 200, 200], 50_000, 9);
        let key = FeatureKey::of(&uni, 0, 16);
        let v = predict_arm(&key, MttkrpObjective::AllModes);
        assert_eq!(v.flavor, KernelFlavor::ModeAgnostic);
        assert_eq!(v.reason, "all-modes-no-retiling");

        // …but a dominant slice still forces the balanced arm.
        let heavy = heavy_slice(&[20_000, 200, 200], 100_000, 60, 5);
        let key = FeatureKey::of(&heavy, 0, 16);
        assert_eq!(predict_arm(&key, MttkrpObjective::AllModes).flavor, KernelFlavor::Balanced);
    }

    #[test]
    fn verdict_is_pure_in_the_key() {
        let t = heavy_slice(&[2_000, 64, 64], 20_000, 60, 7);
        let key = FeatureKey::of(&t, 0, 16);
        assert_eq!(
            predict_arm(&key, MttkrpObjective::SingleMode),
            predict_arm(&key, MttkrpObjective::SingleMode)
        );
    }

    #[test]
    fn batched_speedup_grows_with_group_and_saturates_at_the_solo_ratio() {
        let f = 64 * 1024; // factor set
        let t = 16 * 1024; // mean tensor payload
        let s2 = batched_transfer_speedup(f, t, 2);
        let s8 = batched_transfer_speedup(f, t, 8);
        assert!(s2 > 1.0 && s8 > s2, "amortisation must improve with group size");
        assert!(
            s8 < (f + t) as f64 / t as f64,
            "the asymptote is the solo transfer over the tensor-only transfer"
        );
        assert_eq!(batched_transfer_speedup(f, t, 1), 1.0, "a group of one amortises nothing");
    }

    #[test]
    fn prefer_batched_tracks_the_factor_share_of_the_transfer() {
        // Rank-heavy serving shapes: factors dwarf the tensor payload.
        assert!(prefer_batched(256 * 1024, 8 * 1024, 4));
        // Factor-light: a huge tensor hides the shared upload entirely.
        assert!(!prefer_batched(4 * 1024, 4 * 1024 * 1024, 8));
        // Never batch a group of one.
        assert!(!prefer_batched(256 * 1024, 8 * 1024, 1));
    }
}
