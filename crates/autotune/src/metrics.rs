//! Regression quality metrics for the model evaluation of §IV-B.

/// Mean absolute percentage error, in percent — the paper's headline metric
/// ("the DecisionTree regressor has the lowest MAPE (less than 15%)").
///
/// # Panics
/// Panics on empty or mismatched inputs.
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    100.0 * truth.iter().zip(pred).map(|(&t, &p)| ((t - p) / t.abs().max(1e-12)).abs()).sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    truth.iter().zip(pred).map(|(&t, &p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    (truth.iter().zip(pred).map(|(&t, &p)| (t - p).powi(2)).sum::<f64>() / truth.len() as f64)
        .sqrt()
}

/// Coefficient of determination `R²` (1 = perfect, 0 = mean predictor,
/// negative = worse than the mean).
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    check(truth, pred);
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(&t, &p)| (t - p).powi(2)).sum();
    if ss_tot <= 1e-300 {
        if ss_res <= 1e-300 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

fn check(truth: &[f64], pred: &[f64]) {
    assert!(!truth.is_empty(), "metrics need at least one sample");
    assert_eq!(truth.len(), pred.len(), "truth/prediction length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 4.0];
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(r2(&t, &t), 1.0);
    }

    #[test]
    fn known_values() {
        let t = [2.0, 4.0];
        let p = [1.0, 5.0];
        assert!((mape(&t, &p) - 37.5).abs() < 1e-12); // (50% + 25%)/2
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - 1.0).abs() < 1e-12);
        // ss_tot = 2, ss_res = 2 -> r2 = 0
        assert!(r2(&t, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_negative_when_worse_than_mean() {
        let t = [1.0, 2.0, 3.0];
        let p = [3.0, 3.0, 0.0];
        assert!(r2(&t, &p) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_inputs_panic() {
        let _ = mape(&[], &[]);
    }
}
