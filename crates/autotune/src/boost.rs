//! AdaBoost.R2 (Drucker 1997) over shallow CART trees — the paper's
//! "AdaBoost" entrant.
//!
//! Each round fits a weak tree on a weighted bootstrap of the data,
//! computes its weighted relative error, derives the confidence
//! `β = err / (1 − err)`, and re-weights samples so hard ones are seen
//! more. Prediction is the classic weighted-median of the weak learners.

use crate::tree::DecisionTree;
use crate::Regressor;

/// An AdaBoost.R2 ensemble of regression trees.
#[derive(Clone, Debug)]
pub struct AdaBoostR2 {
    /// Maximum boosting rounds.
    pub n_rounds: usize,
    /// Depth of each weak tree.
    pub max_depth: usize,
    /// RNG seed for the weighted resampling.
    pub seed: u64,
    learners: Vec<DecisionTree>,
    /// `ln(1/β)` confidence of each learner.
    log_inv_beta: Vec<f64>,
}

impl AdaBoostR2 {
    /// A booster with the given shape.
    pub fn new(n_rounds: usize, max_depth: usize, seed: u64) -> Self {
        assert!(n_rounds > 0, "need at least one boosting round");
        Self { n_rounds, max_depth, seed, learners: Vec::new(), log_inv_beta: Vec::new() }
    }

    /// Defaults tuned for the launch-selection problem.
    pub fn default_params() -> Self {
        Self::new(30, 6, 0xb005)
    }

    /// Number of rounds actually kept (boosting stops early when a weak
    /// learner's error reaches 0.5).
    pub fn rounds_used(&self) -> usize {
        self.learners.len()
    }
}

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Samples an index from the discrete distribution given by `cumsum` (the
/// inclusive prefix sums of the weights) using a uniform draw in `[0, total)`.
fn sample_index(cumsum: &[f64], u: f64) -> usize {
    match cumsum.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
        Ok(i) => (i + 1).min(cumsum.len() - 1),
        Err(i) => i.min(cumsum.len() - 1),
    }
}

impl Regressor for AdaBoostR2 {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot boost on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let n = x.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut state = self.seed | 1;
        self.learners.clear();
        self.log_inv_beta.clear();

        for _round in 0..self.n_rounds {
            // Weighted bootstrap.
            let mut cumsum = Vec::with_capacity(n);
            let mut acc = 0.0;
            for &w in &weights {
                acc += w;
                cumsum.push(acc);
            }
            let total = acc;
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let u = (xorshift(&mut state) as f64 / u64::MAX as f64) * total;
                let i = sample_index(&cumsum, u);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTree::new(self.max_depth, 4);
            tree.fit(&bx, &by);

            // Weighted relative (linear) loss on the *original* data.
            let losses: Vec<f64> = (0..n).map(|i| (tree.predict(&x[i]) - y[i]).abs()).collect();
            let lmax = losses.iter().cloned().fold(0.0f64, f64::max);
            if lmax <= 1e-15 {
                // Perfect learner: keep it with large confidence and stop.
                self.learners.push(tree);
                self.log_inv_beta.push(30.0);
                break;
            }
            let rel: Vec<f64> = losses.iter().map(|&l| l / lmax).collect();
            let err: f64 = weights.iter().zip(&rel).map(|(w, r)| w * r).sum();
            if err >= 0.5 {
                // Weak learner no better than chance; stop boosting.
                break;
            }
            let beta = err / (1.0 - err);
            self.learners.push(tree);
            self.log_inv_beta.push((1.0 / beta.max(1e-12)).ln());

            // Re-weight: easy samples (low rel loss) are down-weighted.
            let mut z = 0.0;
            for (w, r) in weights.iter_mut().zip(&rel) {
                *w *= beta.powf(1.0 - r);
                z += *w;
            }
            for w in &mut weights {
                *w /= z;
            }
        }

        if self.learners.is_empty() {
            // Degenerate data: fall back to a single tree so predict works.
            let mut tree = DecisionTree::new(self.max_depth, 4);
            tree.fit(x, y);
            self.learners.push(tree);
            self.log_inv_beta.push(1.0);
        }
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.learners.is_empty(), "predict called before fit");
        // Weighted median of the learner predictions (AdaBoost.R2 rule).
        let mut preds: Vec<(f64, f64)> = self
            .learners
            .iter()
            .zip(&self.log_inv_beta)
            .map(|(t, &w)| (t.predict(features), w))
            .collect();
        preds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let half: f64 = preds.iter().map(|&(_, w)| w).sum::<f64>() / 2.0;
        let mut acc = 0.0;
        for &(p, w) in &preds {
            acc += w;
            if acc >= half {
                return p;
            }
        }
        preds.last().unwrap().0
    }

    fn name(&self) -> &'static str {
        "AdaBoost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = (i % 30) as f64 / 3.0;
            let b = (i / 30) as f64;
            x.push(vec![a, b]);
            y.push((a - 5.0).abs() + 0.3 * b);
        }
        (x, y)
    }

    #[test]
    fn boosting_fits_piecewise_function() {
        let (x, y) = data();
        let mut m = AdaBoostR2::default_params();
        m.fit(&x, &y);
        assert!(m.rounds_used() >= 1);
        let mut sse = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            sse += (m.predict(xi) - yi).powi(2);
        }
        let mse = sse / x.len() as f64;
        assert!(mse < 0.5, "in-sample MSE too high: {mse}");
    }

    #[test]
    fn boosting_beats_a_single_stump() {
        let (x, y) = data();
        let mut stump = DecisionTree::new(1, 2);
        stump.fit(&x, &y);
        let mut boost = AdaBoostR2::new(20, 1, 3);
        boost.fit(&x, &y);
        let err = |f: &dyn Fn(&[f64]) -> f64| {
            x.iter().zip(&y).map(|(xi, yi)| (f(xi) - yi).powi(2)).sum::<f64>()
        };
        assert!(err(&|v| boost.predict(v)) < err(&|v| stump.predict(v)));
    }

    #[test]
    fn perfect_data_stops_early() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 2) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * 10.0).collect();
        let mut m = AdaBoostR2::new(50, 3, 1);
        m.fit(&x, &y);
        assert!(m.rounds_used() < 50, "should stop once perfect");
        assert!((m.predict(&[1.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, y) = data();
        let mut a = AdaBoostR2::new(10, 4, 9);
        let mut b = AdaBoostR2::new(10, 4, 9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&[3.0, 4.0]), b.predict(&[3.0, 4.0]));
    }
}
