//! Launch-space sweeps: the "Executing MTTKRP" stage of Fig. 7 and the raw
//! data behind the Fig. 4 heatmaps.
//!
//! A sweep evaluates the gpusim cost model for one tensor over the whole
//! `gridSize × blockSize` space — the same measurements the paper gathers
//! on hardware, which label the training data and define the ground-truth
//! optimum the predictor is scored against.

use scalfrag_gpusim::{kernel_duration, DeviceSpec, LaunchConfig};
use scalfrag_kernels::workload::{coo_atomic_workload, tiled_smem_bytes, tiled_workload};
use scalfrag_kernels::SegmentStats;
use scalfrag_tensor::CooTensor;

/// Which kernel implementation a sweep times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelFlavor {
    /// The ParTI-style nnz-parallel atomic COO kernel.
    CooAtomic,
    /// The ScalFrag shared-memory tiled kernel.
    Tiled,
    /// The load-balanced segmented-scan kernel (`balance-segscan`).
    Balanced,
    /// The FLYCOO mode-agnostic kernel (`balance-flycoo`).
    ModeAgnostic,
}

impl KernelFlavor {
    /// The full launch configuration for a `(grid, block)` point, including
    /// this kernel's dynamic shared-memory request.
    pub fn config(&self, base: LaunchConfig, rank: u32) -> LaunchConfig {
        match self {
            KernelFlavor::CooAtomic | KernelFlavor::Balanced | KernelFlavor::ModeAgnostic => base,
            KernelFlavor::Tiled => {
                LaunchConfig::with_shared(base.grid, base.block, tiled_smem_bytes(rank, base.block))
            }
        }
    }

    /// Simulated duration of this kernel at one configuration.
    pub fn duration(
        &self,
        device: &DeviceSpec,
        stats: &SegmentStats,
        rank: u32,
        base: LaunchConfig,
    ) -> f64 {
        let cfg = self.config(base, rank);
        let w = match self {
            KernelFlavor::CooAtomic => coo_atomic_workload(stats, rank),
            KernelFlavor::Tiled => tiled_workload(stats, rank, cfg.block),
            KernelFlavor::Balanced => scalfrag_balance::balanced_workload(stats, rank),
            KernelFlavor::ModeAgnostic => scalfrag_balance::flycoo_workload(stats, rank),
        };
        kernel_duration(device, &cfg, &w).total
    }
}

/// The result of sweeping one `(tensor, mode)` over a launch space.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Every `(base configuration, simulated seconds)` pair, in space order.
    pub entries: Vec<(LaunchConfig, f64)>,
    /// MTTKRP FLOPs of the workload (for GFLOP/s conversion).
    pub flops: u64,
}

impl SweepResult {
    /// The fastest configuration and its time.
    ///
    /// # Panics
    /// Panics if the sweep is empty.
    pub fn best(&self) -> (LaunchConfig, f64) {
        self.entries
            .iter()
            .filter(|(_, t)| t.is_finite())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
            .expect("sweep must contain at least one schedulable configuration")
    }

    /// The slowest finite configuration and its time.
    pub fn worst(&self) -> (LaunchConfig, f64) {
        self.entries
            .iter()
            .filter(|(_, t)| t.is_finite())
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
            .expect("sweep must contain at least one schedulable configuration")
    }

    /// GFLOP/s at a given time.
    pub fn gflops_at(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.flops as f64 / seconds / 1e9
        }
    }
}

/// Sweeps `tensor`'s mode-`mode` MTTKRP over `space` for `flavor`.
pub fn sweep_tensor(
    device: &DeviceSpec,
    flavor: KernelFlavor,
    tensor: &CooTensor,
    mode: usize,
    rank: u32,
    space: &[LaunchConfig],
) -> SweepResult {
    let stats = SegmentStats::compute(tensor, mode);
    sweep_stats(device, flavor, &stats, rank, space)
}

/// Sweeps precomputed segment statistics (avoids re-walking the tensor).
pub fn sweep_stats(
    device: &DeviceSpec,
    flavor: KernelFlavor,
    stats: &SegmentStats,
    rank: u32,
    space: &[LaunchConfig],
) -> SweepResult {
    let entries =
        space.iter().map(|&cfg| (cfg, flavor.duration(device, stats, rank, cfg))).collect();
    SweepResult { entries, flops: stats.flops(rank) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DeviceSpec, CooTensor) {
        (DeviceSpec::rtx3090(), scalfrag_tensor::gen::zipf_slices(&[300, 200, 200], 20_000, 0.9, 1))
    }

    #[test]
    fn sweep_covers_space_and_finds_interior_best() {
        let (d, t) = setup();
        let space = LaunchConfig::sweep_space(&d);
        let res = sweep_tensor(&d, KernelFlavor::Tiled, &t, 0, 16, &space);
        assert_eq!(res.entries.len(), space.len());
        let (best, t_best) = res.best();
        let (_, t_worst) = res.worst();
        assert!(t_best < t_worst, "the space must discriminate");
        assert!(t_worst / t_best > 2.0, "performance gap should be large");
        // The Fig. 4 shape: both the tiny-launch corner and the huge-grid
        // edge must lose to the optimum, which therefore sits inside.
        let time_at = |g: u32, b: u32| {
            res.entries.iter().find(|(c, _)| c.grid == g && c.block == b).map(|&(_, t)| t).unwrap()
        };
        assert!(time_at(32, 32) > 1.5 * t_best, "tiny corner should be slow");
        assert!(time_at(1 << 17, 256) > 1.1 * t_best, "huge grid should decline");
        assert!(best.grid < (1 << 17));
    }

    #[test]
    fn different_tensors_have_different_optima() {
        let d = DeviceSpec::rtx3090();
        let small = scalfrag_tensor::gen::uniform(&[100, 50, 50], 2_000, 2);
        let large = scalfrag_tensor::gen::uniform(&[2000, 1500, 1500], 400_000, 3);
        let space = LaunchConfig::sweep_space(&d);
        let b_small = sweep_tensor(&d, KernelFlavor::Tiled, &small, 0, 16, &space).best().0;
        let b_large = sweep_tensor(&d, KernelFlavor::Tiled, &large, 0, 16, &space).best().0;
        assert!(
            b_small.total_threads() < b_large.total_threads(),
            "small tensor {b_small} should want fewer threads than large {b_large}"
        );
    }

    #[test]
    fn tiled_best_beats_coo_best_under_skew() {
        let (d, t) = setup();
        let space = LaunchConfig::sweep_space(&d);
        let coo = sweep_tensor(&d, KernelFlavor::CooAtomic, &t, 0, 16, &space);
        let tiled = sweep_tensor(&d, KernelFlavor::Tiled, &t, 0, 16, &space);
        assert!(tiled.best().1 < coo.best().1);
    }

    #[test]
    fn gflops_conversion() {
        let (d, t) = setup();
        let space = [LaunchConfig::new(1024, 256)];
        let res = sweep_tensor(&d, KernelFlavor::CooAtomic, &t, 0, 16, &space);
        let g = res.gflops_at(res.entries[0].1);
        assert!(g > 0.0 && g < d.peak_gflops());
    }
}
