//! Tuning-strategy comparison — the abstract's claim that ScalFrag "is
//! able to find more suitable kernel launch parameter configurations in a
//! short time".
//!
//! Three ways to pick a launch configuration for a new tensor:
//!
//! * **Exhaustive** — measure every configuration (a full Fig. 4 sweep):
//!   finds the optimum but pays for one kernel execution per candidate.
//! * **Random-N** — measure `N` random candidates: cheaper, luck-bound.
//! * **Model-guided** — one feature extraction plus a model argmin: pays
//!   (almost) nothing at tuning time; quality depends on training.
//!
//! The tuning *cost* of the measured strategies is the simulated time of
//! the kernels they had to run; the model's cost is its wall-clock
//! inference time (there is nothing to run).

use crate::predictor::LaunchPredictor;
use crate::sweep::{sweep_stats, KernelFlavor};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::SegmentStats;
use scalfrag_tensor::{CooTensor, TensorFeatures};

/// How a configuration was searched for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuningStrategy {
    /// Measure every configuration in the space.
    Exhaustive,
    /// Measure this many deterministic-random configurations.
    Random(usize),
    /// Ask a trained predictor.
    ModelGuided,
    /// Measure a coarse sub-grid, then the neighbourhood of its best cell.
    CoarseToFine,
}

impl TuningStrategy {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            TuningStrategy::Exhaustive => "exhaustive".into(),
            TuningStrategy::Random(n) => format!("random-{n}"),
            TuningStrategy::ModelGuided => "model".into(),
            TuningStrategy::CoarseToFine => "coarse-to-fine".into(),
        }
    }
}

/// Result of tuning one `(tensor, mode)` with one strategy.
#[derive(Clone, Debug)]
pub struct TuningOutcome {
    /// Strategy display name.
    pub strategy: String,
    /// The chosen configuration.
    pub chosen: LaunchConfig,
    /// Simulated kernel time at the chosen configuration.
    pub chosen_time_s: f64,
    /// Simulated kernel time at the sweep optimum.
    pub optimal_time_s: f64,
    /// Simulated time spent *measuring* candidates (0 for the model).
    pub measure_cost_s: f64,
    /// Wall-clock seconds of the decision procedure itself.
    pub decide_wall_s: f64,
}

impl TuningOutcome {
    /// `chosen / optimal` (1.0 = found the optimum).
    pub fn quality(&self) -> f64 {
        self.chosen_time_s / self.optimal_time_s
    }

    /// Number of kernel executions the chosen config must amortise before
    /// this strategy's measuring cost is repaid relative to just using the
    /// optimum from the start (∞-safe; 0 when no measuring happened).
    pub fn amortisation_runs(&self) -> f64 {
        if self.measure_cost_s <= 0.0 {
            0.0
        } else {
            self.measure_cost_s / self.optimal_time_s
        }
    }
}

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Tunes the tiled-kernel launch for `(tensor, mode)` with `strategy`.
///
/// # Panics
/// Panics if `strategy` is [`TuningStrategy::ModelGuided`] but `predictor`
/// is `None`, or if `space` is empty.
pub fn tune(
    device: &DeviceSpec,
    tensor: &CooTensor,
    mode: usize,
    rank: u32,
    space: &[LaunchConfig],
    strategy: TuningStrategy,
    predictor: Option<&LaunchPredictor>,
) -> TuningOutcome {
    assert!(!space.is_empty(), "tuning space must be non-empty");
    let stats = SegmentStats::compute(tensor, mode);
    let sweep = sweep_stats(device, KernelFlavor::Tiled, &stats, rank, space);
    let (_, optimal_time_s) = sweep.best();

    let t0 = std::time::Instant::now();
    let (chosen, measure_cost_s) = match strategy {
        TuningStrategy::Exhaustive => {
            let cost: f64 = sweep.entries.iter().map(|&(_, t)| t).filter(|t| t.is_finite()).sum();
            (sweep.best().0, cost)
        }
        TuningStrategy::Random(n) => {
            assert!(n > 0, "random strategy needs at least one sample");
            let mut state =
                0x7ea5_e11e_d00d_f00du64 ^ (tensor.nnz() as u64) ^ ((mode as u64) << 32);
            let mut best: Option<(LaunchConfig, f64)> = None;
            let mut cost = 0.0;
            for _ in 0..n {
                let idx = (xorshift(&mut state) % space.len() as u64) as usize;
                let (cfg, t) = sweep.entries[idx];
                if !t.is_finite() {
                    continue;
                }
                cost += t;
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((cfg, t));
                }
            }
            let (cfg, _) = best.unwrap_or_else(|| sweep.entries[0]);
            (cfg, cost)
        }
        TuningStrategy::ModelGuided => {
            let p = predictor.expect("model-guided tuning needs a predictor");
            let features = TensorFeatures::extract(tensor, mode).to_vec();
            (p.predict_from_features(&features), 0.0)
        }
        TuningStrategy::CoarseToFine => {
            // Phase 1: every 4th configuration.
            let mut cost = 0.0;
            let mut best: Option<(usize, f64)> = None;
            for (i, &(_, t)) in sweep.entries.iter().enumerate().step_by(4) {
                if !t.is_finite() {
                    continue;
                }
                cost += t;
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
            // Phase 2: the coarse winner's neighbourhood.
            let centre = best.map(|(i, _)| i).unwrap_or(0);
            let lo = centre.saturating_sub(3);
            let hi = (centre + 4).min(sweep.entries.len());
            let mut chosen = sweep.entries[centre].0;
            let mut chosen_t = f64::INFINITY;
            for (i, &(cfg, t)) in sweep.entries.iter().enumerate().take(hi).skip(lo) {
                if !t.is_finite() {
                    continue;
                }
                if i != centre {
                    cost += t; // the centre was already measured in phase 1
                }
                if t < chosen_t {
                    chosen = cfg;
                    chosen_t = t;
                }
            }
            (chosen, cost)
        }
    };
    let decide_wall_s = t0.elapsed().as_secs_f64();

    let chosen_time_s = sweep
        .entries
        .iter()
        .find(|(c, _)| *c == chosen)
        .map(|&(_, t)| t)
        .unwrap_or_else(|| KernelFlavor::Tiled.duration(device, &stats, rank, chosen));

    TuningOutcome {
        strategy: strategy.name(),
        chosen,
        chosen_time_s,
        optimal_time_s,
        measure_cost_s,
        decide_wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DeviceSpec, CooTensor, Vec<LaunchConfig>) {
        let d = DeviceSpec::rtx3090();
        let t = scalfrag_tensor::gen::zipf_slices(&[800, 500, 300], 60_000, 0.9, 17);
        let space = LaunchConfig::sweep_space(&d);
        (d, t, space)
    }

    #[test]
    fn exhaustive_finds_the_optimum_at_full_cost() {
        let (d, t, space) = setup();
        let o = tune(&d, &t, 0, 16, &space, TuningStrategy::Exhaustive, None);
        assert!((o.quality() - 1.0).abs() < 1e-12);
        assert!(o.measure_cost_s > o.optimal_time_s * (space.len() as f64) * 0.3);
        assert!(o.amortisation_runs() > 10.0, "exhaustive must be expensive");
    }

    #[test]
    fn random_quality_improves_with_samples() {
        let (d, t, space) = setup();
        let few = tune(&d, &t, 0, 16, &space, TuningStrategy::Random(2), None);
        let many = tune(&d, &t, 0, 16, &space, TuningStrategy::Random(40), None);
        assert!(many.quality() <= few.quality() + 1e-12);
        assert!(many.measure_cost_s > few.measure_cost_s);
    }

    #[test]
    fn model_tunes_in_a_short_time() {
        // The abstract's claim: near-optimal configuration at (near-)zero
        // tuning cost.
        let (d, t, space) = setup();
        let p = LaunchPredictor::train_with_tiers(&d, 16, 3, &[15_000, 60_000, 120_000]);
        let o = tune(&d, &t, 0, 16, &space, TuningStrategy::ModelGuided, Some(&p));
        assert_eq!(o.measure_cost_s, 0.0);
        assert_eq!(o.amortisation_runs(), 0.0);
        assert!(o.quality() < 1.7, "model quality {}", o.quality());
        let ex = tune(&d, &t, 0, 16, &space, TuningStrategy::Exhaustive, None);
        assert!(
            o.measure_cost_s < ex.measure_cost_s,
            "the model must be cheaper than measuring everything"
        );
    }

    #[test]
    #[should_panic(expected = "needs a predictor")]
    fn model_without_predictor_panics() {
        let (d, t, space) = setup();
        let _ = tune(&d, &t, 0, 16, &space, TuningStrategy::ModelGuided, None);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(TuningStrategy::Exhaustive.name(), "exhaustive");
        assert_eq!(TuningStrategy::Random(8).name(), "random-8");
        assert_eq!(TuningStrategy::ModelGuided.name(), "model");
        assert_eq!(TuningStrategy::CoarseToFine.name(), "coarse-to-fine");
    }

    #[test]
    fn coarse_to_fine_is_cheaper_than_exhaustive_and_decent() {
        let (d, t, space) = setup();
        let c2f = tune(&d, &t, 0, 16, &space, TuningStrategy::CoarseToFine, None);
        let ex = tune(&d, &t, 0, 16, &space, TuningStrategy::Exhaustive, None);
        assert!(c2f.measure_cost_s < ex.measure_cost_s * 0.5);
        assert!(c2f.quality() < 1.5, "coarse-to-fine quality {}", c2f.quality());
    }
}
