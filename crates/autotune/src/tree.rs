//! CART regression tree — the model the paper found best
//! ("the DecisionTree regressor has the lowest MAPE (less than 15%)").
//!
//! Standard recursive binary splitting minimising the weighted variance of
//! the children, with depth and leaf-size stopping rules. No pruning —
//! depth limits regularise enough on this problem, and keeping the
//! implementation small makes the <0.5 s training-time claim trivial.

use crate::Regressor;

/// One node of the fitted tree, stored in a flat arena.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Internal split: `features[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    /// Leaf prediction (mean of the training targets that reached it).
    Leaf(f64),
}

/// A CART regression tree.
#[derive(Clone, Debug, Default)]
pub struct DecisionTree {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// A tree with the given capacity controls.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        Self { max_depth, min_samples_split: min_samples_split.max(2), nodes: Vec::new() }
    }

    /// Sensible defaults for the launch-selection problem.
    pub fn default_params() -> Self {
        Self::new(18, 3)
    }

    /// The fitted node arena (for persistence/introspection).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Rebuilds a tree from a node arena (persistence path).
    pub fn from_nodes(max_depth: usize, min_samples_split: usize, nodes: Vec<Node>) -> Self {
        Self { max_depth, min_samples_split, nodes }
    }

    /// Number of leaves of the fitted tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf(_))).count()
    }

    fn build(&mut self, x: &[Vec<f64>], y: &[f64], idx: &mut [usize], depth: usize) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        if depth >= self.max_depth || idx.len() < self.min_samples_split {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        match best_split(x, y, idx) {
            None => {
                self.nodes.push(Node::Leaf(mean));
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                // Partition indices in place.
                let mut lo = 0usize;
                let mut hi = idx.len();
                while lo < hi {
                    if x[idx[lo]][feature] <= threshold {
                        lo += 1;
                    } else {
                        hi -= 1;
                        idx.swap(lo, hi);
                    }
                }
                if lo == 0 || lo == idx.len() {
                    self.nodes.push(Node::Leaf(mean));
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot before recursing.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf(0.0));
                let (left_idx, right_idx) = {
                    // Split the index slice; recursion borrows disjoint halves.
                    let (l, r) = idx.split_at_mut(lo);
                    (l, r)
                };
                let left = self.build(x, y, left_idx, depth + 1);
                let right = self.build(x, y, right_idx, depth + 1);
                self.nodes[slot] = Node::Split { feature, threshold, left, right };
                slot
            }
        }
    }
}

/// Finds the variance-minimising split over all features, or `None` when no
/// split improves on the parent (all-equal features or targets).
fn best_split(x: &[Vec<f64>], y: &[f64], idx: &[usize]) -> Option<(usize, f64)> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n;
    if parent_sse <= 1e-12 {
        return None;
    }

    let num_features = x[idx[0]].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)

    let mut order: Vec<usize> = idx.to_vec();
    // `f` indexes the inner feature vectors, not `x` itself, so the
    // iterator form clippy suggests would be wrong here.
    #[allow(clippy::needless_range_loop)]
    for f in 0..num_features {
        order.sort_unstable_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).unwrap());
        // Prefix sums over the sorted order.
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += y[i];
            left_sq += y[i] * y[i];
            let xv = x[i][f];
            let xn = x[order[k + 1]][f];
            if xn <= xv {
                continue; // can't split between equal feature values
            }
            let nl = (k + 1) as f64;
            let nr = n - nl;
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((f, 0.5 * (xv + xn), sse));
            }
        }
    }
    best.and_then(|(f, t, sse)| (sse < parent_sse - 1e-12).then_some((f, t)))
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit a tree on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature matrix");
        self.nodes.clear();
        let mut idx: Vec<usize> = (0..x.len()).collect();
        self.build(x, y, &mut idx, 0);
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "predict called before fit");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf(v) => return *v,
                Node::Split { feature, threshold, left, right } => {
                    at = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy(f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 2.0, j as f64 / 2.0);
                x.push(vec![a, b]);
                y.push(f(a, b));
            }
        }
        (x, y)
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let (x, y) = grid_xy(|a, _| if a < 5.0 { 1.0 } else { 3.0 });
        let mut t = DecisionTree::new(3, 2);
        t.fit(&x, &y);
        assert_eq!(t.predict(&[2.0, 7.0]), 1.0);
        assert_eq!(t.predict(&[8.0, 1.0]), 3.0);
        assert!(t.num_leaves() <= 4, "a single split suffices");
    }

    #[test]
    fn approximates_a_smooth_function() {
        let (x, y) = grid_xy(|a, b| a * 0.5 + (b - 4.0).abs());
        let mut t = DecisionTree::default_params();
        t.fit(&x, &y);
        let mut worst: f64 = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            worst = worst.max((t.predict(xi) - yi).abs());
        }
        assert!(worst < 0.6, "in-sample error too large: {worst}");
    }

    #[test]
    fn depth_zero_gives_the_mean() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1.0, 2.0, 6.0];
        let mut t = DecisionTree::new(0, 2);
        t.fit(&x, &y);
        assert_eq!(t.num_leaves(), 1);
        assert!((t.predict(&[5.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 10];
        let mut t = DecisionTree::default_params();
        t.fit(&x, &y);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.predict(&[100.0]), 7.0);
    }

    #[test]
    fn identical_features_different_targets() {
        // Unsplittable: must predict the mean rather than loop forever.
        let x = vec![vec![1.0, 2.0]; 6];
        let y = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let mut t = DecisionTree::default_params();
        t.fit(&x, &y);
        assert!((t.predict(&[1.0, 2.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_split_limits_growth() {
        let (x, y) = grid_xy(|a, b| a + b);
        let mut small = DecisionTree::new(20, 2);
        small.fit(&x, &y);
        let mut big = DecisionTree::new(20, 100);
        big.fit(&x, &y);
        assert!(big.num_leaves() < small.num_leaves());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        DecisionTree::default_params().fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let t = DecisionTree::default_params();
        let _ = t.predict(&[1.0]);
    }
}
