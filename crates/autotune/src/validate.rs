//! K-fold cross-validation over corpus *tensors* (not rows): launch
//! selection must generalise to unseen tensors, so folds are cut at the
//! tensor level — row-level CV would leak each tensor's other launch
//! points into training and flatter every model.

use crate::trainer::CorpusItem;
use crate::{metrics, model_features, Regressor};

/// Per-fold and aggregate cross-validation scores for one model family.
#[derive(Clone, Debug)]
pub struct CvReport {
    /// MAPE (%) of time predictions per fold.
    pub fold_mape: Vec<f64>,
    /// R² of log-time predictions per fold.
    pub fold_r2: Vec<f64>,
}

impl CvReport {
    /// Mean MAPE across folds.
    pub fn mean_mape(&self) -> f64 {
        self.fold_mape.iter().sum::<f64>() / self.fold_mape.len().max(1) as f64
    }

    /// Mean R² across folds.
    pub fn mean_r2(&self) -> f64 {
        self.fold_r2.iter().sum::<f64>() / self.fold_r2.len().max(1) as f64
    }

    /// Worst-fold MAPE — the robustness figure.
    pub fn worst_mape(&self) -> f64 {
        self.fold_mape.iter().copied().fold(0.0, f64::max)
    }
}

/// Runs `k`-fold cross-validation of a model family over a corpus.
/// `make_model` constructs a fresh (unfitted) model per fold.
///
/// # Panics
/// Panics if `k < 2` or the corpus has fewer than `k` items.
pub fn cross_validate(
    corpus: &[CorpusItem],
    k: usize,
    mut make_model: impl FnMut() -> Box<dyn Regressor>,
) -> CvReport {
    assert!(k >= 2, "cross-validation needs at least two folds");
    assert!(corpus.len() >= k, "need at least one tensor per fold");

    let mut fold_mape = Vec::with_capacity(k);
    let mut fold_r2 = Vec::with_capacity(k);
    for fold in 0..k {
        let train: Vec<&CorpusItem> =
            corpus.iter().enumerate().filter(|(i, _)| i % k != fold).map(|(_, c)| c).collect();
        let test: Vec<&CorpusItem> =
            corpus.iter().enumerate().filter(|(i, _)| i % k == fold).map(|(_, c)| c).collect();

        // Build the sample matrices inline (avoids cloning tensors just to
        // reuse `to_samples`, which takes owned corpus slices).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for item in &train {
            for &(cfg, t) in &item.sweep.entries {
                if t.is_finite() {
                    x.push(model_features(&item.features, cfg.grid, cfg.block));
                    y.push(t.log10());
                }
            }
        }
        let mut model = make_model();
        model.fit(&x, &y);

        let mut truth_t = Vec::new();
        let mut pred_t = Vec::new();
        let mut truth_log = Vec::new();
        let mut pred_log = Vec::new();
        for item in &test {
            for &(cfg, t) in &item.sweep.entries {
                if !t.is_finite() {
                    continue;
                }
                let p = model.predict(&model_features(&item.features, cfg.grid, cfg.block));
                truth_log.push(t.log10());
                pred_log.push(p);
                truth_t.push(t);
                pred_t.push(10f64.powf(p));
            }
        }
        fold_mape.push(metrics::mape(&truth_t, &pred_t));
        fold_r2.push(metrics::r2(&truth_log, &pred_log));
    }
    CvReport { fold_mape, fold_r2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::generate_corpus;
    use crate::{DecisionTree, RidgeRegression};
    use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

    fn corpus() -> Vec<CorpusItem> {
        let d = DeviceSpec::rtx3090();
        let space = LaunchConfig::coarse_sweep_space(&d);
        generate_corpus(&d, 16, &space, &[4_000, 10_000, 25_000, 60_000], 3)
    }

    #[test]
    fn cv_produces_k_fold_scores() {
        let c = corpus();
        let report = cross_validate(&c, 4, || Box::new(DecisionTree::default_params()));
        assert_eq!(report.fold_mape.len(), 4);
        assert!(report.mean_mape().is_finite() && report.mean_mape() > 0.0);
        assert!(report.worst_mape() >= report.mean_mape() - 1e-9);
        assert!(report.mean_r2() > 0.5, "tree CV R² {}", report.mean_r2());
    }

    #[test]
    fn tree_generalises_better_than_linear() {
        let c = corpus();
        let tree = cross_validate(&c, 3, || Box::new(DecisionTree::default_params()));
        let ridge = cross_validate(&c, 3, || Box::new(RidgeRegression::default_params()));
        assert!(
            tree.mean_mape() < ridge.mean_mape(),
            "tree {} vs ridge {}",
            tree.mean_mape(),
            ridge.mean_mape()
        );
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn single_fold_rejected() {
        let c = corpus();
        let _ = cross_validate(&c, 1, || Box::new(DecisionTree::default_params()));
    }
}
