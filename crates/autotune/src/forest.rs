//! Bagging ensemble of regression trees (the paper's "Bagging" entrant).
//!
//! Bootstrap-resampled trees averaged at prediction time. A deterministic
//! xorshift stream replaces `rand` here so the fitted model depends only on
//! the data and the seed.

use crate::tree::DecisionTree;
use crate::Regressor;
use rayon::prelude::*;

/// A bagged forest of CART trees.
#[derive(Clone, Debug)]
pub struct BaggingForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth of each tree.
    pub max_depth: usize,
    /// Minimum samples to split within each tree.
    pub min_samples_split: usize,
    /// RNG seed for the bootstrap resampling.
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl BaggingForest {
    /// A forest with the given shape.
    pub fn new(n_trees: usize, max_depth: usize, min_samples_split: usize, seed: u64) -> Self {
        assert!(n_trees > 0, "a forest needs at least one tree");
        Self { n_trees, max_depth, min_samples_split, seed, trees: Vec::new() }
    }

    /// Defaults tuned for the launch-selection problem.
    pub fn default_params() -> Self {
        Self::new(24, 12, 4, 0x5eed)
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl Regressor for BaggingForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit a forest on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let n = x.len();
        let params: Vec<u64> = (0..self.n_trees)
            .map(|t| self.seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1)))
            .collect();
        self.trees = params
            .into_par_iter()
            .map(|mut state| {
                let mut bx = Vec::with_capacity(n);
                let mut by = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = (xorshift(&mut state) % n as u64) as usize;
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                let mut tree = DecisionTree::new(self.max_depth, self.min_samples_split);
                tree.fit(&bx, &by);
                tree
            })
            .collect();
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict called before fit");
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "Bagging"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_data(seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = seed;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = (i % 20) as f64;
            let b = (i / 20) as f64;
            let noise = (xorshift(&mut state) % 1000) as f64 / 1000.0 - 0.5;
            x.push(vec![a, b]);
            y.push(a * 2.0 - b + noise);
        }
        (x, y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (x, y) = noisy_data(1);
        let mut f = BaggingForest::default_params();
        f.fit(&x, &y);
        assert_eq!(f.trees().len(), 24);
        let pred = f.predict(&[10.0, 5.0]);
        assert!((pred - 15.0).abs() < 1.5, "prediction {pred} too far from 15");
    }

    #[test]
    fn forest_is_deterministic_in_seed() {
        let (x, y) = noisy_data(2);
        let mut a = BaggingForest::new(8, 8, 4, 7);
        let mut b = BaggingForest::new(8, 8, 4, 7);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for p in [[0.0, 0.0], [5.0, 5.0], [19.0, 19.0]] {
            assert_eq!(a.predict(&p), b.predict(&p));
        }
    }

    #[test]
    fn forest_smooths_noise_relative_to_single_tree() {
        let (x, y) = noisy_data(3);
        // Hold out every 7th sample.
        let train: Vec<usize> = (0..x.len()).filter(|i| i % 7 != 0).collect();
        let test: Vec<usize> = (0..x.len()).filter(|i| i % 7 == 0).collect();
        let tx: Vec<Vec<f64>> = train.iter().map(|&i| x[i].clone()).collect();
        let ty: Vec<f64> = train.iter().map(|&i| y[i]).collect();

        let mut tree = DecisionTree::new(20, 2);
        tree.fit(&tx, &ty);
        let mut forest = BaggingForest::new(32, 20, 2, 1);
        forest.fit(&tx, &ty);

        let err = |pred: &dyn Fn(&[f64]) -> f64| -> f64 {
            test.iter()
                .map(|&i| {
                    let truth = x[i][0] * 2.0 - x[i][1];
                    (pred(&x[i]) - truth).powi(2)
                })
                .sum::<f64>()
                / test.len() as f64
        };
        let e_tree = err(&|f| tree.predict(f));
        let e_forest = err(&|f| forest.predict(f));
        assert!(
            e_forest <= e_tree * 1.1,
            "forest ({e_forest}) should not be much worse than tree ({e_tree})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let _ = BaggingForest::new(0, 4, 2, 0);
    }
}
