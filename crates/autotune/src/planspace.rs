//! Joint plan-space search: (launch configuration × optimizer pipeline).
//!
//! ScalFrag's adaptive launching (§IV-B) originally searched only the
//! `(gridSize, blockSize)` grid of Fig. 4. With the ScheduleIR optimizer
//! the search space gains a second, orthogonal axis: *which pass pipeline
//! to run over the plan* (raw, transfer-coalesced, cross-stream batched,
//! …). This module is the generic argmin over that product space — the
//! cost callback is supplied by the caller (`scalfrag-opt` dry-runs each
//! candidate plan through the interpreter, i.e. the analytic workload
//! model prices every point), so this crate stays execution-agnostic.
//!
//! Determinism: ties break toward the earliest enumeration point
//! (pipelines outer, configurations inner), so a seeded search always
//! returns the same choice.

/// One evaluated point of the joint space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JointChoice {
    /// Index into the caller's pipeline list.
    pub pipeline: usize,
    /// Index into the caller's configuration list.
    pub config: usize,
    /// Cost of the chosen point (whatever unit the callback returns —
    /// simulated seconds for the plan optimizer).
    pub cost: f64,
    /// Points evaluated (|pipelines| × |configs|).
    pub evaluated: usize,
}

/// Exhaustive argmin over the `(pipeline, config)` product space.
///
/// `cost(pipeline_index, config_index)` prices one point; non-finite
/// costs are treated as unschedulable and never chosen. Ties keep the
/// earliest point in `(pipeline, config)` lexicographic order.
///
/// # Panics
/// Panics if either axis is empty, or if every point is non-finite.
pub fn joint_argmin(
    num_pipelines: usize,
    num_configs: usize,
    mut cost: impl FnMut(usize, usize) -> f64,
) -> JointChoice {
    assert!(num_pipelines > 0, "joint search needs at least one pipeline");
    assert!(num_configs > 0, "joint search needs at least one configuration");
    let mut best: Option<JointChoice> = None;
    let mut evaluated = 0usize;
    for p in 0..num_pipelines {
        for c in 0..num_configs {
            let t = cost(p, c);
            evaluated += 1;
            if !t.is_finite() {
                continue;
            }
            if best.is_none_or(|b| t < b.cost) {
                best = Some(JointChoice { pipeline: p, config: c, cost: t, evaluated });
            }
        }
    }
    let mut b = best.expect("at least one (pipeline, config) point must be schedulable");
    b.evaluated = evaluated;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_cheapest_point() {
        let costs = [[3.0, 2.0], [5.0, 1.0], [4.0, 9.0]];
        let c = joint_argmin(3, 2, |p, cfg| costs[p][cfg]);
        assert_eq!((c.pipeline, c.config), (1, 1));
        assert_eq!(c.cost, 1.0);
        assert_eq!(c.evaluated, 6);
    }

    #[test]
    fn ties_break_toward_the_earliest_point() {
        let c = joint_argmin(2, 2, |_, _| 7.0);
        assert_eq!((c.pipeline, c.config), (0, 0));
    }

    #[test]
    fn non_finite_points_are_never_chosen() {
        let c = joint_argmin(2, 1, |p, _| if p == 0 { f64::INFINITY } else { 2.0 });
        assert_eq!(c.pipeline, 1);
    }

    #[test]
    #[should_panic(expected = "schedulable")]
    fn all_unschedulable_panics() {
        joint_argmin(1, 1, |_, _| f64::NAN);
    }
}
