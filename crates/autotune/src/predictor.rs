//! The online half of the adaptive launching strategy: given a tensor's
//! features, pick the launch configuration to use ("the model will output
//! an optimal launch parameter combination based on the input feature
//! parameters", §IV-B).

use crate::trainer::{generate_corpus, select_config, to_samples};
use crate::tree::DecisionTree;
use crate::Regressor;
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_tensor::{CooTensor, TensorFeatures};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A trained launch-parameter predictor bound to a device and launch space.
pub struct LaunchPredictor {
    model: Box<dyn Regressor>,
    space: Vec<LaunchConfig>,
    rank: u32,
}

impl LaunchPredictor {
    /// Wraps an already-fitted model.
    pub fn from_model(model: Box<dyn Regressor>, space: Vec<LaunchConfig>, rank: u32) -> Self {
        assert!(!space.is_empty(), "launch space must be non-empty");
        Self { model, space, rank }
    }

    /// Trains a DecisionTree predictor from scratch for `device` — the
    /// one-shot offline phase (the paper: "the training needs to be
    /// performed only once, the cost can be considered negligible").
    /// Uses the full default nnz tiers; see [`LaunchPredictor::train_with_tiers`].
    pub fn train_default(device: &DeviceSpec, rank: u32, seed: u64) -> Self {
        Self::train_with_tiers(device, rank, seed, crate::trainer::DEFAULT_TIERS)
    }

    /// Trains a DecisionTree predictor on a corpus spanning the given nnz
    /// tiers. Smaller tier sets train faster but only cover matching
    /// deployment sizes.
    pub fn train_with_tiers(device: &DeviceSpec, rank: u32, seed: u64, tiers: &[usize]) -> Self {
        let space = LaunchConfig::coarse_sweep_space(device);
        let corpus = generate_corpus(device, rank, &space, tiers, seed);
        let (x, y) = to_samples(&corpus);
        let mut tree = DecisionTree::default_params();
        tree.fit(&x, &y);
        // The *selection* space can be finer than the training space: the
        // model interpolates over (log grid, log block).
        let selection_space = LaunchConfig::sweep_space(device);
        Self::from_model(Box::new(tree), selection_space, rank)
    }

    /// The rank this predictor was trained for.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The launch space the predictor selects from.
    pub fn space(&self) -> &[LaunchConfig] {
        &self.space
    }

    /// Predicts the launch configuration for a feature vector.
    pub fn predict_from_features(&self, features: &[f64]) -> LaunchConfig {
        select_config(self.model.as_ref(), features, &self.space)
    }

    /// Extracts features from `(tensor, mode)` and predicts.
    pub fn predict(&self, tensor: &CooTensor, mode: usize) -> LaunchConfig {
        let f = TensorFeatures::extract(tensor, mode).to_vec();
        self.predict_from_features(&f)
    }
}

/// A cheap-to-clone handle over lazily-trained per-rank [`LaunchPredictor`]s.
///
/// The paper's claim — *"the training needs to be performed only once, the
/// cost can be considered negligible"* — only holds if the trained model is
/// actually shared. This handle is that sharing point: every clone refers
/// to the same per-rank predictor table, so a serving layer (or a pool of
/// `ScalFrag` facades, one per device) pays predictor training once per
/// rank across its whole lifetime instead of once per run/worker.
#[derive(Clone)]
pub struct TrainedPredictor {
    inner: Arc<TrainedPredictorInner>,
}

struct TrainedPredictorInner {
    device: DeviceSpec,
    seed: u64,
    tiers: Option<Vec<usize>>,
    per_rank: Mutex<HashMap<u32, Arc<LaunchPredictor>>>,
    trainings: AtomicUsize,
}

impl TrainedPredictor {
    /// Creates the shared handle. Training itself is lazy — the first
    /// [`TrainedPredictor::for_rank`] call for each rank trains that
    /// rank's model; every later call (from any clone) reuses it.
    ///
    /// `tiers = None` uses [`crate::trainer::DEFAULT_TIERS`].
    pub fn train_once(device: &DeviceSpec, seed: u64, tiers: Option<Vec<usize>>) -> Self {
        Self {
            inner: Arc::new(TrainedPredictorInner {
                device: device.clone(),
                seed,
                tiers,
                per_rank: Mutex::new(HashMap::new()),
                trainings: AtomicUsize::new(0),
            }),
        }
    }

    /// The predictor for `rank`, training it on first use.
    pub fn for_rank(&self, rank: u32) -> Arc<LaunchPredictor> {
        let mut table = self.inner.per_rank.lock().expect("predictor table poisoned");
        table
            .entry(rank)
            .or_insert_with(|| {
                self.inner.trainings.fetch_add(1, Ordering::Relaxed);
                Arc::new(match &self.inner.tiers {
                    Some(tiers) => LaunchPredictor::train_with_tiers(
                        &self.inner.device,
                        rank,
                        self.inner.seed,
                        tiers,
                    ),
                    None => {
                        LaunchPredictor::train_default(&self.inner.device, rank, self.inner.seed)
                    }
                })
            })
            .clone()
    }

    /// How many full trainings have actually run — the honesty counter the
    /// serving tests assert on (a shared handle must report 1 per rank no
    /// matter how many jobs/devices used it).
    pub fn trainings(&self) -> usize {
        self.inner.trainings.load(Ordering::Relaxed)
    }

    /// The device the models are trained against.
    pub fn device(&self) -> &DeviceSpec {
        &self.inner.device
    }

    /// The training seed.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{sweep_tensor, KernelFlavor};

    #[test]
    fn trained_predictor_picks_near_optimal_configs() {
        let d = DeviceSpec::rtx3090();
        let p = LaunchPredictor::train_with_tiers(&d, 16, 42, &[3_000, 15_000, 50_000]);
        // Fresh tensors the predictor never saw.
        let tensors = [
            scalfrag_tensor::gen::uniform(&[500, 300, 200], 20_000, 777),
            scalfrag_tensor::gen::zipf_slices(&[800, 400, 300], 30_000, 1.0, 778),
        ];
        let space = LaunchConfig::sweep_space(&d);
        for t in &tensors {
            let cfg = p.predict(t, 0);
            assert!(cfg.validate(&d).is_ok());
            let sweep = sweep_tensor(&d, KernelFlavor::Tiled, t, 0, 16, &space);
            let t_sel = KernelFlavor::Tiled.duration(
                &d,
                &scalfrag_kernels::SegmentStats::compute(t, 0),
                16,
                cfg,
            );
            let (_, t_best) = sweep.best();
            assert!(
                t_sel / t_best < 2.0,
                "predicted config {cfg} is {}x off the optimum",
                t_sel / t_best
            );
        }
    }

    #[test]
    fn predictor_differentiates_tensor_sizes() {
        let d = DeviceSpec::rtx3090();
        let p = LaunchPredictor::train_with_tiers(&d, 16, 7, &[3_000, 20_000, 100_000, 300_000]);
        let small = scalfrag_tensor::gen::uniform(&[80, 60, 40], 1_500, 1);
        let large = scalfrag_tensor::gen::uniform(&[2000, 1500, 900], 300_000, 2);
        let c_small = p.predict(&small, 0);
        let c_large = p.predict(&large, 0);
        assert!(
            c_small.total_threads() <= c_large.total_threads(),
            "small {c_small} vs large {c_large}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_rejected() {
        let _ =
            LaunchPredictor::from_model(Box::new(DecisionTree::default_params()), Vec::new(), 16);
    }

    #[test]
    fn train_once_shares_models_across_clones() {
        let d = DeviceSpec::rtx3090();
        let handle = TrainedPredictor::train_once(&d, 42, Some(vec![3_000, 12_000]));
        assert_eq!(handle.trainings(), 0, "training is lazy");
        let clone = handle.clone();
        let a = handle.for_rank(16);
        let b = clone.for_rank(16);
        assert!(Arc::ptr_eq(&a, &b), "clones must share the trained model");
        assert_eq!(handle.trainings(), 1, "one rank, one training");
        let _ = clone.for_rank(8);
        assert_eq!(handle.trainings(), 2, "second rank trains once more");
        let _ = handle.for_rank(8);
        assert_eq!(clone.trainings(), 2, "re-requests never retrain");
    }

    #[test]
    fn train_once_predictions_match_direct_training() {
        let d = DeviceSpec::rtx3090();
        let tiers = vec![3_000usize, 12_000];
        let handle = TrainedPredictor::train_once(&d, 7, Some(tiers.clone()));
        let direct = LaunchPredictor::train_with_tiers(&d, 16, 7, &tiers);
        let t = scalfrag_tensor::gen::zipf_slices(&[300, 200, 100], 9_000, 0.8, 5);
        assert_eq!(handle.for_rank(16).predict(&t, 0), direct.predict(&t, 0));
    }
}
