//! Feature-importance analysis for fitted decision trees: which of the
//! §IV-B tensor features actually drive the launch choice. Importance is
//! the classic split-count/coverage-weighted measure: every internal node
//! credits its feature with the (approximate) fraction of the tree below
//! it.

use crate::tree::{DecisionTree, Node};

/// Per-feature importance scores, normalised to sum to 1.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureImportance {
    /// `scores[f]` for feature index `f`.
    pub scores: Vec<f64>,
}

impl FeatureImportance {
    /// Features ranked by descending importance: `(feature, score)`.
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        let mut r: Vec<(usize, f64)> = self.scores.iter().copied().enumerate().collect();
        r.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        r
    }

    /// Renders the ranking with the given feature names (extra names are
    /// ignored; missing names fall back to indices).
    pub fn render(&self, names: &[&str]) -> String {
        let mut out = String::new();
        for (f, s) in self.ranking() {
            if s <= 0.0 {
                continue;
            }
            let name = names.get(f).copied().unwrap_or("?");
            out.push_str(&format!("{name:<24} ({f:>2})  {:>6.1}%\n", s * 100.0));
        }
        out
    }
}

/// Computes split-based feature importance of a fitted tree.
///
/// # Panics
/// Panics if the tree has not been fitted.
pub fn tree_importance(tree: &DecisionTree, num_features: usize) -> FeatureImportance {
    assert!(!tree.nodes().is_empty(), "importance requires a fitted tree");
    let nodes = tree.nodes();
    // Subtree leaf counts approximate coverage (the arena does not store
    // sample counts).
    fn leaves(nodes: &[Node], at: usize) -> usize {
        match &nodes[at] {
            Node::Leaf(_) => 1,
            Node::Split { left, right, .. } => leaves(nodes, *left) + leaves(nodes, *right),
        }
    }
    let total_leaves = leaves(nodes, 0) as f64;
    let mut scores = vec![0.0f64; num_features];
    for (i, n) in nodes.iter().enumerate() {
        if let Node::Split { feature, .. } = n {
            if *feature < num_features {
                scores[*feature] += leaves(nodes, i) as f64 / total_leaves;
            }
        }
    }
    let total: f64 = scores.iter().sum();
    if total > 0.0 {
        for s in &mut scores {
            *s /= total;
        }
    }
    FeatureImportance { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regressor;

    #[test]
    fn informative_feature_dominates() {
        // y depends only on feature 0; feature 1 is noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f64;
            let b = ((i * 7919) % 13) as f64;
            x.push(vec![a, b]);
            y.push((a - 10.0).abs() * 3.0);
        }
        let mut tree = DecisionTree::new(8, 4);
        tree.fit(&x, &y);
        let imp = tree_importance(&tree, 2);
        assert!(imp.scores[0] > 0.8, "feature 0 should dominate: {:?}", imp.scores);
        let ranking = imp.ranking();
        assert_eq!(ranking[0].0, 0);
    }

    #[test]
    fn scores_normalise_to_one() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![(i % 10) as f64, (i / 10) as f64]);
            y.push((i % 10) as f64 + 2.0 * (i / 10) as f64);
        }
        let mut tree = DecisionTree::new(6, 4);
        tree.fit(&x, &y);
        let imp = tree_importance(&tree, 2);
        assert!((imp.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn single_leaf_tree_has_zero_importance() {
        let x = vec![vec![1.0], vec![1.0]];
        let y = vec![2.0, 2.0];
        let mut tree = DecisionTree::new(4, 2);
        tree.fit(&x, &y);
        let imp = tree_importance(&tree, 1);
        assert_eq!(imp.scores, vec![0.0]);
        assert!(imp.render(&["only"]).is_empty());
    }

    #[test]
    fn render_names_features() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            x.push(vec![(i % 6) as f64, 0.0]);
            y.push((i % 6) as f64);
        }
        let mut tree = DecisionTree::new(5, 2);
        tree.fit(&x, &y);
        let imp = tree_importance(&tree, 2);
        let s = imp.render(&["log_nnz", "noise"]);
        assert!(s.contains("log_nnz"));
        assert!(!s.contains("noise"), "zero-importance features are hidden");
    }
}
