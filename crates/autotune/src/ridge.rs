//! Ridge (L2-regularised linear) regression — the linear baseline of the
//! model zoo. Solved in closed form via Gaussian elimination on the
//! regularised normal equations `(XᵀX + λI) w = Xᵀy` (feature count is
//! ~14, so no fancy numerics needed). Features are z-score normalised.

use crate::Regressor;

/// A ridge regressor.
#[derive(Clone, Debug)]
pub struct RidgeRegression {
    /// L2 regularisation strength.
    pub lambda: f64,
    weights: Vec<f64>,
    bias: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl RidgeRegression {
    /// A regressor with the given regularisation.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        Self { lambda, weights: Vec::new(), bias: 0.0, mean: Vec::new(), std: Vec::new() }
    }

    /// Defaults for the launch-selection problem.
    pub fn default_params() -> Self {
        Self::new(1e-2)
    }

    /// The fitted weight vector (normalised feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A w = b` by Gaussian elimination with partial pivoting.
/// `A` is row-major `n × n`, consumed.
fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        assert!(d.abs() > 1e-12, "singular system despite regularisation");
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut w = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in (col + 1)..n {
            acc -= a[col * n + c] * w[c];
        }
        w[col] = acc / a[col * n + col];
    }
    w
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit ridge on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let n = x.len() as f64;
        let dim = x[0].len();
        self.mean = (0..dim).map(|j| x.iter().map(|r| r[j]).sum::<f64>() / n).collect();
        self.std = (0..dim)
            .map(|j| {
                let m = self.mean[j];
                (x.iter().map(|r| (r[j] - m).powi(2)).sum::<f64>() / n).sqrt().max(1e-9)
            })
            .collect();
        let y_mean = y.iter().sum::<f64>() / n;

        // Normal equations in normalised, centred space.
        let mut xtx = vec![0.0; dim * dim];
        let mut xty = vec![0.0; dim];
        for (row, &target) in x.iter().zip(y) {
            let z: Vec<f64> =
                row.iter().enumerate().map(|(j, &v)| (v - self.mean[j]) / self.std[j]).collect();
            let t = target - y_mean;
            for i in 0..dim {
                xty[i] += z[i] * t;
                for j in i..dim {
                    xtx[i * dim + j] += z[i] * z[j];
                }
            }
        }
        for i in 0..dim {
            for j in 0..i {
                xtx[i * dim + j] = xtx[j * dim + i];
            }
            xtx[i * dim + i] += self.lambda * n;
        }
        self.weights = solve(xtx, xty, dim);
        self.bias = y_mean;
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.weights.is_empty(), "predict called before fit");
        let mut acc = self.bias;
        for (j, &v) in features.iter().enumerate() {
            acc += self.weights[j] * (v - self.mean[j]) / self.std[j];
        }
        acc
    }

    fn name(&self) -> &'static str {
        "Ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_linear_function() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let a = (i % 10) as f64;
            let b = (i / 10) as f64;
            x.push(vec![a, b]);
            y.push(3.0 * a - 2.0 * b + 5.0);
        }
        let mut m = RidgeRegression::new(1e-8);
        m.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((m.predict(xi) - yi).abs() < 1e-3);
        }
        assert!((m.predict(&[20.0, 0.0]) - 65.0).abs() < 1e-2, "extrapolation");
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let a = i as f64;
            x.push(vec![a]);
            y.push(2.0 * a);
        }
        let mut weak = RidgeRegression::new(1e-8);
        weak.fit(&x, &y);
        let mut strong = RidgeRegression::new(100.0);
        strong.fit(&x, &y);
        assert!(strong.weights()[0].abs() < weak.weights()[0].abs());
    }

    #[test]
    fn collinear_features_survive_via_regularisation() {
        // Two identical features: OLS is singular, ridge is fine.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut m = RidgeRegression::new(1e-3);
        m.fit(&x, &y);
        assert!((m.predict(&[10.0, 10.0]) - 10.0).abs() < 0.2);
    }

    #[test]
    fn constant_target_learns_bias() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.0; 10];
        let mut m = RidgeRegression::default_params();
        m.fit(&x, &y);
        assert!((m.predict(&[3.0]) - 4.0).abs() < 1e-6);
    }
}
