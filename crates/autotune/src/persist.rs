//! Model persistence: a compact line-oriented text format for fitted
//! decision trees, so the offline-trained predictor can ship with a
//! deployment (and so benchmarks do not retrain on every run).
//!
//! Format (one node per line, arena order):
//! ```text
//! scalfrag-tree v1 <max_depth> <min_samples_split> <node_count>
//! S <feature> <threshold> <left> <right>
//! L <value>
//! ```

use crate::tree::{DecisionTree, Node};
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from tree deserialisation.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem (1-based line, message).
    Format(usize, String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format(l, m) => write!(f, "format error on line {l}: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a fitted tree.
pub fn save_tree(tree: &DecisionTree, mut w: impl Write) -> std::io::Result<()> {
    writeln!(
        w,
        "scalfrag-tree v1 {} {} {}",
        tree.max_depth,
        tree.min_samples_split,
        tree.nodes().len()
    )?;
    for node in tree.nodes() {
        match node {
            Node::Split { feature, threshold, left, right } => {
                writeln!(w, "S {feature} {threshold} {left} {right}")?;
            }
            Node::Leaf(v) => writeln!(w, "L {v}")?,
        }
    }
    Ok(())
}

/// Reads a tree written by [`save_tree`].
pub fn load_tree(r: impl Read) -> Result<DecisionTree, PersistError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| PersistError::Format(1, "missing header".into()))??;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() != 5 || h[0] != "scalfrag-tree" || h[1] != "v1" {
        return Err(PersistError::Format(1, format!("bad header '{header}'")));
    }
    let parse = |s: &str, line: usize| -> Result<usize, PersistError> {
        s.parse().map_err(|_| PersistError::Format(line, format!("bad integer '{s}'")))
    };
    let max_depth = parse(h[2], 1)?;
    let min_split = parse(h[3], 1)?;
    let count = parse(h[4], 1)?;

    let mut nodes = Vec::with_capacity(count);
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let f: Vec<&str> = line.split_whitespace().collect();
        match f.as_slice() {
            ["S", feat, thr, l, r] => nodes.push(Node::Split {
                feature: parse(feat, lineno)?,
                threshold: thr
                    .parse()
                    .map_err(|_| PersistError::Format(lineno, "bad threshold".into()))?,
                left: parse(l, lineno)?,
                right: parse(r, lineno)?,
            }),
            ["L", v] => nodes.push(Node::Leaf(
                v.parse().map_err(|_| PersistError::Format(lineno, "bad leaf value".into()))?,
            )),
            [] => continue,
            _ => return Err(PersistError::Format(lineno, format!("bad node line '{line}'"))),
        }
    }
    if nodes.len() != count {
        return Err(PersistError::Format(
            0,
            format!("expected {count} nodes, got {}", nodes.len()),
        ));
    }
    // Validate child indices.
    for (i, n) in nodes.iter().enumerate() {
        if let Node::Split { left, right, .. } = n {
            if *left >= nodes.len() || *right >= nodes.len() {
                return Err(PersistError::Format(i + 2, "child index out of range".into()));
            }
        }
    }
    Ok(DecisionTree::from_nodes(max_depth, min_split, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regressor;

    fn fitted_tree() -> DecisionTree {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64, (i / 10) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * 2.0 + (v[1] - 4.0).abs()).collect();
        let mut t = DecisionTree::new(8, 2);
        t.fit(&x, &y);
        t
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let tree = fitted_tree();
        let mut buf = Vec::new();
        save_tree(&tree, &mut buf).unwrap();
        let loaded = load_tree(buf.as_slice()).unwrap();
        for i in 0..50 {
            let p = vec![(i % 13) as f64 * 0.7, (i % 7) as f64];
            assert_eq!(tree.predict(&p), loaded.predict(&p), "point {p:?}");
        }
        assert_eq!(tree.nodes().len(), loaded.nodes().len());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(load_tree("nonsense v9 1 2 3\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_body() {
        let tree = fitted_tree();
        let mut buf = Vec::new();
        save_tree(&tree, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(load_tree(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_dangling_child_index() {
        let text = "scalfrag-tree v1 4 2 2\nS 0 1.5 1 7\nL 3.0\n";
        assert!(matches!(load_tree(text.as_bytes()), Err(PersistError::Format(_, _))));
    }
}
