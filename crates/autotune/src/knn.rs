//! k-nearest-neighbour regression — the instance-based entrant of the
//! model zoo (the paper's SVM slot is filled by the two non-tree models,
//! kNN and ridge, both of which share SVM's "no tree structure" character
//! while staying dependency-free).
//!
//! Features are z-score normalised from the training set; prediction is
//! the inverse-distance-weighted mean of the `k` nearest samples.

use crate::Regressor;

/// A kNN regressor with z-score feature normalisation.
#[derive(Clone, Debug)]
pub struct KnnRegressor {
    /// Number of neighbours.
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl KnnRegressor {
    /// A regressor with the given `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, x: Vec::new(), y: Vec::new(), mean: Vec::new(), std: Vec::new() }
    }

    /// Defaults for the launch-selection problem.
    pub fn default_params() -> Self {
        Self::new(5)
    }

    fn normalize(&self, features: &[f64]) -> Vec<f64> {
        features.iter().enumerate().map(|(i, &v)| (v - self.mean[i]) / self.std[i]).collect()
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit kNN on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        let dim = x[0].len();
        let n = x.len() as f64;
        self.mean = (0..dim).map(|j| x.iter().map(|r| r[j]).sum::<f64>() / n).collect();
        self.std = (0..dim)
            .map(|j| {
                let m = self.mean[j];
                let var = x.iter().map(|r| (r[j] - m).powi(2)).sum::<f64>() / n;
                var.sqrt().max(1e-9)
            })
            .collect();
        self.x = x
            .iter()
            .map(|r| r.iter().enumerate().map(|(j, &v)| (v - self.mean[j]) / self.std[j]).collect())
            .collect();
        self.y = y.to_vec();
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.x.is_empty(), "predict called before fit");
        let q = self.normalize(features);
        // Collect the k smallest distances with a simple partial selection.
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let d: f64 = r.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                (d, i)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).unwrap());
        let neigh = &dists[..k];
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d, i) in neigh {
            let w = 1.0 / (d.sqrt() + 1e-9);
            wsum += w;
            acc += w * self.y[i];
        }
        acc / wsum
    }

    fn name(&self) -> &'static str {
        "kNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_training_points() {
        let x = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let y = vec![1.0, 2.0, 3.0];
        let mut m = KnnRegressor::new(1);
        m.fit(&x, &y);
        assert!((m.predict(&[0.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((m.predict(&[10.0, 0.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let x = vec![vec![0.0], vec![10.0]];
        let y = vec![0.0, 10.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y);
        let p = m.predict(&[5.0]);
        assert!((p - 5.0).abs() < 1e-6, "midpoint should average: {p}");
    }

    #[test]
    fn normalisation_makes_scales_comparable() {
        // Feature 1 has a huge scale; without normalisation it would drown
        // feature 0, which is the informative one.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let a = (i % 10) as f64;
            let b = (i as f64) * 1e6;
            x.push(vec![a, b]);
            y.push(a);
        }
        let mut m = KnnRegressor::new(3);
        m.fit(&x, &y);
        let p = m.predict(&[7.0, 50e6]);
        assert!((p - 7.0).abs() < 1.5, "prediction {p} should track feature 0");
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![1.0, 3.0];
        let mut m = KnnRegressor::new(10);
        m.fit(&x, &y);
        let p = m.predict(&[1.5]);
        assert!(p > 1.0 && p < 3.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KnnRegressor::new(0);
    }
}
