//! The offline training pipeline of Fig. 7: generate tensors → execute
//! MTTKRP sweeps → collect data & train → evaluate.

use crate::sweep::{sweep_tensor, KernelFlavor, SweepResult};
use crate::{
    model_features, AdaBoostR2, BaggingForest, DecisionTree, KnnRegressor, Regressor,
    RidgeRegression,
};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_tensor::{gen, CooTensor, TensorFeatures};
use std::time::Instant;

/// One corpus item: a tensor, the target mode, its features, and its sweep.
pub struct CorpusItem {
    /// The synthesised tensor.
    pub tensor: CooTensor,
    /// Target MTTKRP mode.
    pub mode: usize,
    /// Extracted §IV-B feature vector.
    pub features: Vec<f64>,
    /// Ground-truth sweep over the training space.
    pub sweep: SweepResult,
}

/// Default non-zero tiers for the offline training corpus. The deployment
/// tensors (scaled FROSTT suite) span ~50 K–2.5 M nnz, so training covers
/// that range — a predictor asked about tensors far outside its training
/// distribution extrapolates poorly, exactly like any hardware-measured
/// auto-tuner.
pub const DEFAULT_TIERS: &[usize] =
    &[3_000, 8_000, 15_000, 30_000, 60_000, 125_000, 250_000, 500_000, 1_000_000, 2_000_000];

/// Generates the training corpus ("Generating Tensors" of Fig. 7): for
/// every nnz tier, tensors across orders, mode-size shapes (thin slices vs
/// fat slices) and sparsity regimes (uniform / Zipf / blocked), each swept
/// over `space` on the cost model.
pub fn generate_corpus(
    device: &DeviceSpec,
    rank: u32,
    space: &[LaunchConfig],
    tiers: &[usize],
    seed: u64,
) -> Vec<CorpusItem> {
    let mut items = Vec::new();
    let mut push = |tensor: CooTensor, mode: usize| {
        let features = TensorFeatures::extract(&tensor, mode).to_vec();
        let sweep = sweep_tensor(device, KernelFlavor::Tiled, &tensor, mode, rank, space);
        items.push(CorpusItem { tensor, mode, features, sweep });
    };

    let d = |x: usize, div: usize, min: usize| (x / div).max(min) as u32;
    for (ti, &n) in tiers.iter().enumerate() {
        let s = seed.wrapping_add(ti as u64 * 7919);
        // Many small slices (thin): low contention, CSF-friendly.
        let thin = [d(n, 50, 64), d(n, 400, 32), d(n, 800, 16)];
        // Few large slices (fat): the atomic-contention regime.
        let fat = [d(n, 2_000, 16), d(n, 100, 64), d(n, 100, 64)];
        let four = [d(n, 100, 32), d(n, 200, 16), d(n, 400, 16), d(n, 5_000, 4)];

        push(gen::uniform(&thin, n, s), 0);
        let z = gen::zipf_slices(&thin, n, 0.8, s + 1);
        push(z.clone(), 0);
        push(z, 1);
        push(gen::zipf_slices(&fat, n, 1.1, s + 2), 0);
        // Block count scales with nnz so the blocks can actually hold the
        // non-zeros (capacity ~2x target).
        push(gen::blocked(&thin, n, (n / 2_048).max(16), 16, s + 3), 0);
        push(gen::zipf_slices(&four, n, 0.7, s + 4), ti % 4);
    }
    items
}

/// Flattens corpus items into regression samples
/// `features(tensor) ⊕ [log2 grid, log2 block] → log10 seconds`.
pub fn to_samples(items: &[CorpusItem]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for item in items {
        for &(cfg, t) in &item.sweep.entries {
            if !t.is_finite() {
                continue;
            }
            x.push(model_features(&item.features, cfg.grid, cfg.block));
            y.push(t.log10());
        }
    }
    (x, y)
}

/// Evaluation record of one model — the numbers behind the §IV-B claims.
#[derive(Clone, Debug)]
pub struct ModelEval {
    /// Model family name.
    pub name: &'static str,
    /// MAPE (%) of the *time* predictions on held-out tensors.
    pub mape_time: f64,
    /// R² of the log-time predictions.
    pub r2_log: f64,
    /// Wall-clock training time in seconds.
    pub train_time_s: f64,
    /// Mean wall-clock inference time per *config selection* (a full argmin
    /// over the launch space), in microseconds.
    pub select_time_us: f64,
    /// Mean ratio `t(selected config) / t(optimal config)` on held-out
    /// tensors (1.0 = always picks the optimum).
    pub selection_ratio: f64,
}

/// The trained model zoo plus per-model evaluations.
pub struct TrainedModels {
    /// Evaluations, in training order.
    pub evals: Vec<ModelEval>,
    /// The fitted models, parallel to `evals`.
    pub models: Vec<Box<dyn Regressor>>,
}

impl TrainedModels {
    /// Index of the model with the lowest selection ratio (ties: lower MAPE).
    pub fn best_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.evals.len() {
            let a = &self.evals[i];
            let b = &self.evals[best];
            if (a.selection_ratio, a.mape_time) < (b.selection_ratio, b.mape_time) {
                best = i;
            }
        }
        best
    }

    /// The best model by [`TrainedModels::best_index`].
    pub fn best(&self) -> &dyn Regressor {
        self.models[self.best_index()].as_ref()
    }
}

/// Picks the config in `space` minimising `model`'s predicted time for the
/// given tensor features.
pub fn select_config(
    model: &dyn Regressor,
    tensor_features: &[f64],
    space: &[LaunchConfig],
) -> LaunchConfig {
    assert!(!space.is_empty(), "selection space must be non-empty");
    *space
        .iter()
        .min_by(|a, b| {
            let pa = model.predict(&model_features(tensor_features, a.grid, a.block));
            let pb = model.predict(&model_features(tensor_features, b.grid, b.block));
            pa.partial_cmp(&pb).unwrap()
        })
        .unwrap()
}

/// Trains the full model zoo on `train` and evaluates on `test`
/// ("Data Collecting & Training / Evaluating & Predicting" of Fig. 7).
pub fn train_and_evaluate(
    train: &[CorpusItem],
    test: &[CorpusItem],
    space: &[LaunchConfig],
) -> TrainedModels {
    let (x, y) = to_samples(train);
    assert!(!x.is_empty(), "empty training corpus");

    let zoo: Vec<Box<dyn Regressor>> = vec![
        Box::new(DecisionTree::default_params()),
        Box::new(BaggingForest::default_params()),
        Box::new(AdaBoostR2::default_params()),
        Box::new(KnnRegressor::default_params()),
        Box::new(RidgeRegression::default_params()),
    ];

    let mut evals = Vec::new();
    let mut models = Vec::new();
    for mut model in zoo {
        let t0 = Instant::now();
        model.fit(&x, &y);
        let train_time_s = t0.elapsed().as_secs_f64();

        // Held-out accuracy: predict times for every (tensor, config).
        let mut truth_t = Vec::new();
        let mut pred_t = Vec::new();
        let mut truth_log = Vec::new();
        let mut pred_log = Vec::new();
        let mut ratios = Vec::new();
        let t_sel0 = Instant::now();
        let mut selections = 0usize;
        for item in test {
            for &(cfg, t) in &item.sweep.entries {
                if !t.is_finite() {
                    continue;
                }
                let p = model.predict(&model_features(&item.features, cfg.grid, cfg.block));
                truth_log.push(t.log10());
                pred_log.push(p);
                truth_t.push(t);
                pred_t.push(10f64.powf(p));
            }
            let chosen = select_config(model.as_ref(), &item.features, space);
            selections += 1;
            let t_chosen = item
                .sweep
                .entries
                .iter()
                .find(|(c, _)| *c == chosen)
                .map(|&(_, t)| t)
                .unwrap_or(f64::INFINITY);
            let (_, t_best) = item.sweep.best();
            ratios.push(t_chosen / t_best);
        }
        let select_time_us = t_sel0.elapsed().as_secs_f64() * 1e6 / selections.max(1) as f64;

        evals.push(ModelEval {
            name: model.name(),
            mape_time: crate::metrics::mape(&truth_t, &pred_t),
            r2_log: crate::metrics::r2(&truth_log, &pred_log),
            train_time_s,
            select_time_us,
            selection_ratio: ratios.iter().sum::<f64>() / ratios.len().max(1) as f64,
        });
        models.push(model);
    }
    TrainedModels { evals, models }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_setup() -> (DeviceSpec, Vec<LaunchConfig>, Vec<CorpusItem>, Vec<CorpusItem>) {
        let d = DeviceSpec::rtx3090();
        let space = LaunchConfig::coarse_sweep_space(&d);
        let train = generate_corpus(&d, 16, &space, &[3_000, 15_000, 50_000], 1);
        let test = generate_corpus(&d, 16, &space, &[8_000, 30_000], 999);
        (d, space, train, test)
    }

    #[test]
    fn corpus_is_diverse_and_nonempty() {
        let (_, _, train, _) = small_setup();
        assert!(train.len() >= 12, "corpus too small: {}", train.len());
        let orders: std::collections::HashSet<usize> =
            train.iter().map(|i| i.tensor.order()).collect();
        assert!(orders.contains(&3) && orders.contains(&4));
        // Different optima exist in the corpus.
        let bests: std::collections::HashSet<(u32, u32)> = train
            .iter()
            .map(|i| {
                let b = i.sweep.best().0;
                (b.grid, b.block)
            })
            .collect();
        assert!(bests.len() >= 2, "all tensors share one optimum — corpus too uniform");
    }

    #[test]
    fn samples_are_well_formed() {
        let (_, _, train, _) = small_setup();
        let (x, y) = to_samples(&train);
        assert_eq!(x.len(), y.len());
        assert!(x.len() > 200);
        let dim = x[0].len();
        assert_eq!(dim, scalfrag_tensor::TensorFeatures::dim() + 2);
        assert!(x.iter().all(|r| r.len() == dim));
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tree_meets_the_papers_bar() {
        let (_, space, train, test) = small_setup();
        let trained = train_and_evaluate(&train, &test, &space);
        assert_eq!(trained.evals.len(), 5);
        let tree = trained.evals.iter().find(|e| e.name == "DecisionTree").unwrap();
        // The paper: MAPE < 15%, training < 0.5 s. Give slack for debug
        // builds on MAPE; selection quality is the metric that matters.
        assert!(tree.mape_time < 40.0, "tree MAPE {}%", tree.mape_time);
        assert!(tree.selection_ratio < 1.5, "tree selection ratio {}", tree.selection_ratio);
        assert!(tree.r2_log > 0.7, "tree R² {}", tree.r2_log);
    }

    #[test]
    fn tree_family_beats_the_linear_baseline_on_accuracy() {
        // The paper's claim is about *prediction accuracy* (DecisionTree
        // had the lowest MAPE); the cost surface is non-linear in the
        // features, so the linear model should predict times worse.
        let (_, space, train, test) = small_setup();
        let trained = train_and_evaluate(&train, &test, &space);
        let get = |n: &str| trained.evals.iter().find(|e| e.name == n).unwrap();
        let ridge = get("Ridge");
        let tree = get("DecisionTree");
        assert!(
            tree.mape_time < ridge.mape_time,
            "tree MAPE {}% vs ridge MAPE {}%",
            tree.mape_time,
            ridge.mape_time
        );
        assert!(tree.r2_log > ridge.r2_log);
    }

    #[test]
    fn best_model_selection_is_consistent() {
        let (_, space, train, test) = small_setup();
        let trained = train_and_evaluate(&train, &test, &space);
        let bi = trained.best_index();
        assert!(bi < trained.evals.len());
        let _ = trained.best().name();
    }

    #[test]
    fn select_config_returns_member_of_space() {
        let (_, space, train, _) = small_setup();
        let (x, y) = to_samples(&train);
        let mut tree = DecisionTree::default_params();
        tree.fit(&x, &y);
        let cfg = select_config(&tree, &train[0].features, &space);
        assert!(space.contains(&cfg));
    }
}
