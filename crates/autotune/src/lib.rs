//! # scalfrag-autotune
//!
//! The adaptive launching strategy of ScalFrag (§IV-B): machine-learning
//! models that map sparse-tensor feature parameters to the best kernel
//! launch configuration.
//!
//! The paper's pipeline (Fig. 7) is reproduced end to end:
//!
//! 1. **Generating tensors** — [`trainer::generate_corpus`] synthesises
//!    tensors across sizes, orders and sparsity regimes.
//! 2. **Executing MTTKRP** — [`sweep`] measures (via the gpusim cost model)
//!    every launch configuration of the Fig. 4 space for each tensor.
//! 3. **Data collecting & training** — the measurements become regression
//!    samples `features(tensor) ⊕ features(config) → log(time)`, on which
//!    the model zoo is fitted: [`DecisionTree`] (CART), [`BaggingForest`],
//!    [`AdaBoostR2`], [`KnnRegressor`] and [`RidgeRegression`] — the same
//!    families the paper tries ("DecisionTree, SVM, AdaBoost, Bagging").
//! 4. **Evaluating & predicting** — [`metrics`] reports MAPE/MAE/R² (the
//!    paper: DecisionTree < 15 % MAPE, training < 0.5 s, inference < 1 % of
//!    an MTTKRP), and [`LaunchPredictor`] answers the online question:
//!    *given this tensor, which `<<<grid, block>>>` should ScalFrag use?*
//! 5. **Choosing the kernel arm** — [`arms::predict_arm`] sits one level
//!    above the launch predictor: a bucket-threshold rule over the
//!    [`scalfrag_tensor::FeatureKey`] imbalance features that dispatches
//!    between the tiled baseline, the load-balanced segmented scan and the
//!    FLYCOO mode-agnostic arm, calibrated against the cost-model argmin.

pub mod arms;
pub mod boost;
pub mod forest;
pub mod importance;
pub mod knn;
pub mod metrics;
pub mod persist;
pub mod planspace;
pub mod predictor;
pub mod ridge;
pub mod sweep;
pub mod trainer;
pub mod tree;
pub mod tuner;
pub mod validate;

pub use arms::{
    batched_transfer_speedup, modelled_best_arm, predict_arm, prefer_batched, ArmVerdict,
    MttkrpObjective, BATCH_SPEEDUP_GATE,
};
pub use boost::AdaBoostR2;
pub use forest::BaggingForest;
pub use importance::{tree_importance, FeatureImportance};
pub use knn::KnnRegressor;
pub use metrics::{mae, mape, r2, rmse};
pub use planspace::{joint_argmin, JointChoice};
pub use predictor::{LaunchPredictor, TrainedPredictor};
pub use ridge::RidgeRegression;
pub use sweep::{sweep_tensor, SweepResult};
pub use trainer::{generate_corpus, train_and_evaluate, ModelEval, TrainedModels};
pub use tree::DecisionTree;
pub use tuner::{tune, TuningOutcome, TuningStrategy};
pub use validate::{cross_validate, CvReport};

/// A regression model mapping a feature vector to a scalar target.
///
/// All models in the zoo implement this; the trainer and predictor are
/// generic over it.
pub trait Regressor: Send + Sync {
    /// Fits the model to `(x, y)` pairs.
    ///
    /// # Panics
    /// Implementations panic on empty or ragged input.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predicts the target for one feature vector.
    fn predict(&self, features: &[f64]) -> f64;

    /// Model family name for reports.
    fn name(&self) -> &'static str;
}

/// Builds the model-input feature vector from tensor features plus a
/// launch configuration (`log2 grid`, `log2 block` appended).
pub fn model_features(tensor_features: &[f64], grid: u32, block: u32) -> Vec<f64> {
    let mut v = Vec::with_capacity(tensor_features.len() + 2);
    v.extend_from_slice(tensor_features);
    v.push((grid.max(1) as f64).log2());
    v.push((block.max(1) as f64).log2());
    v
}
