//! The memoized execution plan and its LRU cache.
//!
//! ScalFrag's adaptive-launching decision (§IV-B of the paper) is a pure
//! function of quantized tensor features — exactly the kind of per-tensor
//! work worth memoizing across a request stream. A [`FeatureKey`] (coarse
//! log-bucketed features, see `scalfrag-tensor`) maps to the full
//! [`ExecutionPlan`]: predictor verdict, kernel choice, segment/stream
//! counts and the hybrid split decision. A stream of similarly-shaped
//! tensors then pays the predictor once per *shape class* instead of once
//! per request.
//!
//! The cache also snapshots: [`PlanCache::snapshot`] serializes the full
//! LRU state (entries, recency ticks, capacity) to a deterministic
//! versioned text form, and [`PlanCache::restore`] rebuilds it —
//! byte-identical round trips, typed [`SnapshotError`]s on version or
//! format mismatch. A server warm-started from a snapshot serves its
//! first request of every known shape class from the cache.

use scalfrag_gpusim::LaunchConfig;
use scalfrag_pipeline::KernelChoice;
use scalfrag_tensor::FeatureKey;
use std::collections::HashMap;

/// Format version written into (and required from) every snapshot.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot failed to restore.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// The version this build reads ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The snapshot text does not parse.
    Corrupt {
        /// 1-based line the parser gave up on.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "plan-cache snapshot version {found} (this build reads {expected})")
            }
            SnapshotError::Corrupt { line, reason } => {
                write!(f, "plan-cache snapshot corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn kernel_name(kernel: KernelChoice) -> &'static str {
    match kernel {
        KernelChoice::CooAtomic => "coo-atomic",
        KernelChoice::Tiled => "tiled",
        KernelChoice::Balanced => "balanced",
        KernelChoice::ModeAgnostic => "mode-agnostic",
    }
}

fn kernel_from_name(name: &str) -> Option<KernelChoice> {
    match name {
        "coo-atomic" => Some(KernelChoice::CooAtomic),
        "tiled" => Some(KernelChoice::Tiled),
        "balanced" => Some(KernelChoice::Balanced),
        "mode-agnostic" => Some(KernelChoice::ModeAgnostic),
        _ => None,
    }
}

/// The key as a sortable integer tuple — snapshot entries are ordered by
/// this, so serialization never depends on `HashMap` iteration order.
fn key_tuple(k: &FeatureKey) -> [i64; 12] {
    [
        k.order as i64,
        k.mode as i64,
        k.rank as i64,
        k.nnz_bucket as i64,
        k.slices_bucket as i64,
        k.fibers_bucket as i64,
        k.mode_dim_bucket as i64,
        k.slice_ratio_bucket as i64,
        k.fiber_ratio_bucket as i64,
        k.imbalance_bucket as i64,
        k.fiber_imbalance_bucket as i64,
        k.gini_bucket as i64,
    ]
}

/// Everything the executor needs to run a job — the memoized verdict of
/// the planning stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionPlan {
    /// Kernel launch configuration (trained-predictor verdict, or the
    /// ParTI heuristic when adaptive launching is off).
    pub config: LaunchConfig,
    /// Which kernel to launch.
    pub kernel: KernelChoice,
    /// Pipeline segment count.
    pub segments: usize,
    /// Stream count.
    pub streams: usize,
    /// `Some(threshold)` = route slices with fewer nnz to the host CPU.
    pub hybrid_threshold: Option<u32>,
}

/// Hit/miss/eviction counters of one cache (or one cache-off ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
    /// Configured capacity.
    pub capacity: usize,
    /// Live entries.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over all lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU map from quantized tensor features to execution plans.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// key → (plan, last-use tick).
    map: HashMap<FeatureKey, (ExecutionPlan, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache needs capacity > 0");
        Self { capacity, map: HashMap::new(), tick: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks `key` up, counting a hit (and refreshing recency) or a miss.
    pub fn get(&mut self, key: &FeatureKey) -> Option<ExecutionPlan> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((plan, last_use)) => {
                *last_use = self.tick;
                self.hits += 1;
                Some(*plan)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a planning round that bypassed the cache entirely (the
    /// cache-off ablation still reports its miss count).
    pub fn count_bypass(&mut self) {
        self.misses += 1;
    }

    /// Inserts a freshly computed plan, evicting the least recently used
    /// entry if at capacity.
    pub fn insert(&mut self, key: FeatureKey, plan: ExecutionPlan) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| *k)
                .expect("cache at capacity is non-empty");
            self.map.remove(&lru);
            self.evictions += 1;
        }
        self.map.insert(key, (plan, self.tick));
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Serializes the cache to the versioned snapshot text form:
    /// a header line, then one line per entry sorted by key. Entries
    /// carry their recency ticks, so a restored cache evicts in exactly
    /// the order the original would have. Hit/miss counters are *not*
    /// snapshotted — a warm-started server counts its own traffic.
    pub fn snapshot(&self) -> String {
        let mut entries: Vec<(&FeatureKey, &(ExecutionPlan, u64))> = self.map.iter().collect();
        entries.sort_by_key(|(k, _)| key_tuple(k));
        let mut out = format!(
            "scalfrag-plan-cache v{SNAPSHOT_VERSION}\ncapacity {} tick {}\n",
            self.capacity, self.tick
        );
        for (k, (p, last_use)) in entries {
            let kt = key_tuple(k);
            let key_str = kt.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ");
            let hybrid = match p.hybrid_threshold {
                Some(t) => t.to_string(),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "entry {key_str} | {} {} {} {} {} {} {hybrid} | {last_use}\n",
                p.config.grid,
                p.config.block,
                p.config.shared_mem_per_block,
                kernel_name(p.kernel),
                p.segments,
                p.streams,
            ));
        }
        out
    }

    /// Rebuilds a cache from [`PlanCache::snapshot`] output. The restored
    /// cache reproduces the original's entries, recency order, tick and
    /// capacity; counters start at zero.
    pub fn restore(snapshot: &str) -> Result<Self, SnapshotError> {
        let corrupt =
            |line: usize, reason: &str| SnapshotError::Corrupt { line, reason: reason.to_string() };
        let mut lines = snapshot.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| corrupt(1, "empty snapshot"))?;
        let version: u32 = header
            .strip_prefix("scalfrag-plan-cache v")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt(1, "bad header"))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let (_, meta) = lines.next().ok_or_else(|| corrupt(2, "missing capacity line"))?;
        let meta: Vec<&str> = meta.split_whitespace().collect();
        let (capacity, tick) = match meta.as_slice() {
            ["capacity", c, "tick", t] => (
                c.parse::<usize>().map_err(|_| corrupt(2, "bad capacity"))?,
                t.parse::<u64>().map_err(|_| corrupt(2, "bad tick"))?,
            ),
            _ => return Err(corrupt(2, "malformed capacity line")),
        };
        if capacity == 0 {
            return Err(corrupt(2, "capacity must be positive"));
        }
        let mut cache = PlanCache::new(capacity);
        cache.tick = tick;
        for (i, line) in lines {
            let lineno = i + 1;
            let body = line
                .strip_prefix("entry ")
                .ok_or_else(|| corrupt(lineno, "expected an entry line"))?;
            let parts: Vec<&str> = body.split('|').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(corrupt(lineno, "entry needs key | plan | last_use fields"));
            }
            let kf: Vec<i64> = parts[0]
                .split_whitespace()
                .map(|v| v.parse::<i64>())
                .collect::<Result<_, _>>()
                .map_err(|_| corrupt(lineno, "non-integer key field"))?;
            if kf.len() != 12 {
                return Err(corrupt(lineno, "key needs 12 fields"));
            }
            let key = FeatureKey {
                order: kf[0] as usize,
                mode: kf[1] as usize,
                rank: kf[2] as u32,
                nnz_bucket: kf[3] as i32,
                slices_bucket: kf[4] as i32,
                fibers_bucket: kf[5] as i32,
                mode_dim_bucket: kf[6] as i32,
                slice_ratio_bucket: kf[7] as i32,
                fiber_ratio_bucket: kf[8] as i32,
                imbalance_bucket: kf[9] as i32,
                fiber_imbalance_bucket: kf[10] as i32,
                gini_bucket: kf[11] as i32,
            };
            let pf: Vec<&str> = parts[1].split_whitespace().collect();
            if pf.len() != 7 {
                return Err(corrupt(lineno, "plan needs 7 fields"));
            }
            let int = |s: &str| s.parse::<u32>().map_err(|_| corrupt(lineno, "bad plan number"));
            let plan = ExecutionPlan {
                config: LaunchConfig {
                    grid: int(pf[0])?,
                    block: int(pf[1])?,
                    shared_mem_per_block: int(pf[2])?,
                },
                kernel: kernel_from_name(pf[3])
                    .ok_or_else(|| corrupt(lineno, "unknown kernel name"))?,
                segments: pf[4].parse().map_err(|_| corrupt(lineno, "bad segments"))?,
                streams: pf[5].parse().map_err(|_| corrupt(lineno, "bad streams"))?,
                hybrid_threshold: if pf[6] == "-" { None } else { Some(int(pf[6])?) },
            };
            let last_use: u64 =
                parts[2].parse().map_err(|_| corrupt(lineno, "bad last_use tick"))?;
            if cache.map.len() >= capacity {
                return Err(corrupt(lineno, "more entries than capacity"));
            }
            if last_use > tick {
                return Err(corrupt(lineno, "last_use beyond the snapshot tick"));
            }
            cache.map.insert(key, (plan, last_use));
        }
        Ok(cache)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            capacity: self.capacity,
            entries: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(nnz_bucket: i32) -> FeatureKey {
        FeatureKey {
            order: 3,
            mode: 0,
            rank: 16,
            nnz_bucket,
            slices_bucket: 10,
            fibers_bucket: 12,
            mode_dim_bucket: 14,
            slice_ratio_bucket: 8,
            fiber_ratio_bucket: 1,
            imbalance_bucket: 2,
            fiber_imbalance_bucket: 1,
            gini_bucket: 2,
        }
    }

    fn plan(grid: u32) -> ExecutionPlan {
        ExecutionPlan {
            config: LaunchConfig::new(grid, 256),
            kernel: KernelChoice::Tiled,
            segments: 4,
            streams: 4,
            hybrid_threshold: None,
        }
    }

    #[test]
    fn hit_miss_counters_and_round_trip() {
        let mut c = PlanCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan(64));
        assert_eq!(c.get(&key(1)), Some(plan(64)));
        assert_ne!(c.get(&key(2)), Some(plan(64)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        let _ = c.get(&key(1)); // refresh 1 → 2 is now LRU
        c.insert(key(3), plan(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(2)).is_none(), "key 2 was evicted");
        assert!(c.get(&key(1)).is_some(), "recently used key survives");
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        c.insert(key(1), plan(9));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)), Some(plan(9)));
    }

    #[test]
    fn empty_cache_reports_cleanly() {
        let c = PlanCache::new(8);
        assert!(c.is_empty());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::new(0);
    }

    #[test]
    fn snapshot_round_trips_bit_deterministically() {
        let mut c = PlanCache::new(4);
        c.insert(key(1), plan(64));
        c.insert(
            key(2),
            ExecutionPlan { hybrid_threshold: Some(32), kernel: KernelChoice::Balanced, ..plan(9) },
        );
        let _ = c.get(&key(1)); // refresh recency so the ticks differ
        let snap = c.snapshot();
        let restored = PlanCache::restore(&snap).expect("round trip");
        assert_eq!(restored.snapshot(), snap, "snapshot(restore(s)) must be byte-identical");
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.stats().capacity, 4);
        assert_eq!((restored.stats().hits, restored.stats().misses), (0, 0));
    }

    #[test]
    fn restored_cache_reproduces_lru_order() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        let _ = c.get(&key(1)); // 2 becomes LRU
        let mut restored = PlanCache::restore(&c.snapshot()).unwrap();
        restored.insert(key(3), plan(3));
        assert!(restored.get(&key(2)).is_none(), "the restored LRU victim must match");
        assert!(restored.get(&key(1)).is_some());
        assert!(restored.get(&key(3)).is_some());
    }

    #[test]
    fn restored_cache_serves_hits() {
        let mut c = PlanCache::new(4);
        let p = ExecutionPlan { kernel: KernelChoice::ModeAgnostic, ..plan(128) };
        c.insert(key(7), p);
        let mut warm = PlanCache::restore(&c.snapshot()).unwrap();
        assert_eq!(warm.get(&key(7)), Some(p), "every kernel flavor must survive the trip");
        assert_eq!(warm.stats().hits, 1);
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let snap = PlanCache::new(2).snapshot();
        let future = snap.replacen("v1", "v9", 1);
        assert_eq!(
            PlanCache::restore(&future).unwrap_err(),
            SnapshotError::VersionMismatch { found: 9, expected: SNAPSHOT_VERSION }
        );
        let msg = format!("{}", PlanCache::restore(&future).unwrap_err());
        assert!(msg.contains("version 9"), "unhelpful message: {msg}");
    }

    #[test]
    fn corruption_is_a_typed_error_with_a_line() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        let snap = c.snapshot();
        for bad in [
            snap.replacen("entry", "entry x", 1),
            snap.replacen("tiled", "warp-speed", 1),
            snap.replace("scalfrag-plan-cache v1", "something else"),
            String::new(),
        ] {
            match PlanCache::restore(&bad) {
                Err(SnapshotError::Corrupt { line, .. }) => assert!(line >= 1),
                other => panic!("expected Corrupt, got {other:?} for {bad:?}"),
            }
        }
    }
}
