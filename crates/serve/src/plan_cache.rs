//! The memoized execution plan and its LRU cache.
//!
//! ScalFrag's adaptive-launching decision (§IV-B of the paper) is a pure
//! function of quantized tensor features — exactly the kind of per-tensor
//! work worth memoizing across a request stream. A [`FeatureKey`] (coarse
//! log-bucketed features, see `scalfrag-tensor`) maps to the full
//! [`ExecutionPlan`]: predictor verdict, kernel choice, segment/stream
//! counts and the hybrid split decision. A stream of similarly-shaped
//! tensors then pays the predictor once per *shape class* instead of once
//! per request.

use scalfrag_gpusim::LaunchConfig;
use scalfrag_pipeline::KernelChoice;
use scalfrag_tensor::FeatureKey;
use std::collections::HashMap;

/// Everything the executor needs to run a job — the memoized verdict of
/// the planning stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionPlan {
    /// Kernel launch configuration (trained-predictor verdict, or the
    /// ParTI heuristic when adaptive launching is off).
    pub config: LaunchConfig,
    /// Which kernel to launch.
    pub kernel: KernelChoice,
    /// Pipeline segment count.
    pub segments: usize,
    /// Stream count.
    pub streams: usize,
    /// `Some(threshold)` = route slices with fewer nnz to the host CPU.
    pub hybrid_threshold: Option<u32>,
}

/// Hit/miss/eviction counters of one cache (or one cache-off ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
    /// Configured capacity.
    pub capacity: usize,
    /// Live entries.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over all lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU map from quantized tensor features to execution plans.
pub struct PlanCache {
    capacity: usize,
    /// key → (plan, last-use tick).
    map: HashMap<FeatureKey, (ExecutionPlan, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache needs capacity > 0");
        Self { capacity, map: HashMap::new(), tick: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks `key` up, counting a hit (and refreshing recency) or a miss.
    pub fn get(&mut self, key: &FeatureKey) -> Option<ExecutionPlan> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((plan, last_use)) => {
                *last_use = self.tick;
                self.hits += 1;
                Some(*plan)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a planning round that bypassed the cache entirely (the
    /// cache-off ablation still reports its miss count).
    pub fn count_bypass(&mut self) {
        self.misses += 1;
    }

    /// Inserts a freshly computed plan, evicting the least recently used
    /// entry if at capacity.
    pub fn insert(&mut self, key: FeatureKey, plan: ExecutionPlan) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| *k)
                .expect("cache at capacity is non-empty");
            self.map.remove(&lru);
            self.evictions += 1;
        }
        self.map.insert(key, (plan, self.tick));
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            capacity: self.capacity,
            entries: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(nnz_bucket: i32) -> FeatureKey {
        FeatureKey {
            order: 3,
            mode: 0,
            rank: 16,
            nnz_bucket,
            slices_bucket: 10,
            fibers_bucket: 12,
            mode_dim_bucket: 14,
            slice_ratio_bucket: 8,
            fiber_ratio_bucket: 1,
            imbalance_bucket: 2,
            fiber_imbalance_bucket: 1,
            gini_bucket: 2,
        }
    }

    fn plan(grid: u32) -> ExecutionPlan {
        ExecutionPlan {
            config: LaunchConfig::new(grid, 256),
            kernel: KernelChoice::Tiled,
            segments: 4,
            streams: 4,
            hybrid_threshold: None,
        }
    }

    #[test]
    fn hit_miss_counters_and_round_trip() {
        let mut c = PlanCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan(64));
        assert_eq!(c.get(&key(1)), Some(plan(64)));
        assert_ne!(c.get(&key(2)), Some(plan(64)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        let _ = c.get(&key(1)); // refresh 1 → 2 is now LRU
        c.insert(key(3), plan(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(2)).is_none(), "key 2 was evicted");
        assert!(c.get(&key(1)).is_some(), "recently used key survives");
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        c.insert(key(1), plan(9));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)), Some(plan(9)));
    }

    #[test]
    fn empty_cache_reports_cleanly() {
        let c = PlanCache::new(8);
        assert!(c.is_empty());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::new(0);
    }
}
