//! # scalfrag-serve — multi-tenant MTTKRP serving
//!
//! The serving layer turns the single-shot ScalFrag facade into a
//! request-serving system on the simulated GPU substrate:
//!
//! * **Jobs and queues** ([`job`], [`queue`]) — [`MttkrpJob`]s carry a
//!   tensor handle, mode, factors, priority class, optional deadline and a
//!   tenant; the QoS queue rate-limits each tenant with a token bucket,
//!   shares devices by weighted fair queueing, and orders within a tenant
//!   by SLO-aware earliest-deadline-first.
//! * **Admission control** ([`admission`]) — a bounded queue plus an
//!   estimated-makespan budget; overload produces typed [`Rejected`]
//!   responses with retry hints, never panics or unbounded queues.
//! * **Batch groups** ([`batch`]) — compatible queued jobs (equal
//!   quantized key, shared factor handle, same geometry and priority
//!   class) fuse into one ScheduleIR plan per dispatch: the factor set
//!   crosses PCIe once per *group* instead of once per job.
//! * **Plan cache** ([`plan_cache`]) — quantized [`FeatureKey`]s memoize
//!   the adaptive-launching verdict (§IV-B of the paper) per shape class,
//!   with LRU eviction, hit/miss counters and deterministic
//!   snapshot/restore for warm starts.
//! * **Scheduler** ([`scheduler`]) — a deterministic discrete-event loop
//!   over a [`DevicePool`] (explicit devices or a `scalfrag-cluster`
//!   node); each dispatch interprets one batch-fused plan through the
//!   `scalfrag-opt` default pipeline.
//! * **Autoscaling** ([`autoscale`]) — watermark + hysteresis growth and
//!   shrink of the active device set under sustained load, reusing the
//!   fault path's park/rejoin mechanics.
//! * **Report** ([`report`]) — per-job phase timings (queue wait, batch
//!   wait, plan, H2D/kernel/D2H with the shared factor upload split
//!   proportionally), latency percentiles, throughput, batch occupancy,
//!   cache hit rate and rejection counts, with a bit-stable fingerprint
//!   for reproducibility.
//!
//! ```
//! use scalfrag_serve::{ScalFragServer, WorkloadSpec};
//!
//! // Small training tiers keep the example fast; the default covers
//! // the full ~3 K – 2 M nnz range.
//! let server = ScalFragServer::builder().train_tiers(vec![3_000, 12_000]).build();
//! let jobs = scalfrag_serve::workload::synthesize(&WorkloadSpec {
//!     jobs: 20,
//!     shape_classes: 4,
//!     ..Default::default()
//! });
//! let report = server.run(jobs);
//! assert_eq!(report.completed.len() + report.rejected.len(), 20);
//! ```

pub mod admission;
pub mod autoscale;
pub mod batch;
pub mod job;
pub mod plan_cache;
pub mod queue;
pub mod report;
pub mod scheduler;
pub mod workload;

pub use admission::{estimate_service_s, AdmissionPolicy, RejectReason, Rejected};
pub use autoscale::{AutoscalePolicy, Autoscaler, ScaleEvent};
pub use batch::BatchGroup;
pub use job::{JobId, MttkrpJob, Priority};
pub use plan_cache::{CacheStats, ExecutionPlan, PlanCache, SnapshotError, SNAPSHOT_VERSION};
pub use queue::{slo_target_s, QosConfig, QosQueues, TokenBucket};
pub use report::{JobRecord, ServeReport};
pub use scheduler::{plan_builders, DevicePool, PLAN_HIT_S, PLAN_MISS_S};
pub use workload::{synthesize, WorkloadSpec};

use scalfrag_autotune::TrainedPredictor;
use scalfrag_cluster::NodeSpec;
use scalfrag_gpusim::DeviceSpec;
use scalfrag_tensor::FeatureKey;

/// Serving-layer configuration: admission thresholds, plan-cache sizing
/// and the executor feature toggles (the ablation surface of the
/// acceptance benchmarks).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission thresholds.
    pub admission: AdmissionPolicy,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Memoize plans (`false` = the cache-off ablation: every job pays the
    /// full planning cost, misses still counted).
    pub plan_caching: bool,
    /// Plan launches with the trained predictor (§IV-B) instead of the
    /// ParTI heuristic.
    pub adaptive_launch: bool,
    /// Launch the shared-memory tiled kernel (§IV-A).
    pub tiled_kernel: bool,
    /// Compute real MTTKRP outputs (`false` = timing-only dry runs, the
    /// load-test default).
    pub functional: bool,
    /// `Some(t)` = hybrid CPU/GPU split at slice population `t`
    /// (functional mode only).
    pub hybrid_threshold: Option<u32>,
    /// Resubmission budget per job: a job rejected at admission (or killed
    /// by a device failure) re-enters the arrival stream after its
    /// `retry_after_s` hint, at most this many times. `0` (the default)
    /// keeps rejections final, matching the fault-free serving semantics.
    pub max_retries: u32,
    /// Largest batch group one dispatch may fuse (`1` = solo dispatches
    /// only — the batching-off ablation).
    pub max_batch: usize,
    /// How far past the dispatch device's free time the arrival horizon
    /// stretches (s): arrivals inside the window are admitted *before* the
    /// group forms so they can join it, at the cost of the earlier
    /// members' `batch_wait_s`. `0` (the default) never delays a dispatch.
    pub batch_window_s: f64,
    /// Per-tenant QoS: token-bucket rate limits and WFQ weights.
    pub qos: QosConfig,
    /// `Some(policy)` = start with `policy.min_devices` active and let the
    /// autoscaler grow/shrink the active set; `None` = the whole pool
    /// serves from the start.
    pub autoscale: Option<AutoscalePolicy>,
    /// A plan-cache snapshot ([`PlanCache::snapshot`]) to warm-start from.
    /// Restore errors panic at serve start — a bad snapshot is an operator
    /// error, not a load condition.
    pub warm_snapshot: Option<String>,
    /// Capture a [`PlanCache::snapshot`] at end of run into
    /// [`ServeReport::cache_snapshot`].
    pub snapshot_cache: bool,
    /// Predictor training seed.
    pub train_seed: u64,
    /// Predictor training tiers (`None` = autotune defaults, ~3 K – 2 M
    /// nnz).
    pub train_tiers: Option<Vec<usize>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionPolicy::default(),
            cache_capacity: 256,
            plan_caching: true,
            adaptive_launch: true,
            tiled_kernel: true,
            functional: false,
            hybrid_threshold: None,
            max_retries: 0,
            max_batch: 8,
            batch_window_s: 0.0,
            qos: QosConfig::default(),
            autoscale: None,
            warm_snapshot: None,
            snapshot_cache: false,
            train_seed: 0x5ca1,
            train_tiers: None,
        }
    }
}

/// The serving facade: a device pool, a configuration, and a shared
/// trained predictor. Construct via [`ScalFragServer::builder`], then call
/// [`ScalFragServer::run`] (defined in [`scheduler`]) on a job stream.
pub struct ScalFragServer {
    pub(crate) pool: DevicePool,
    pub(crate) config: ServerConfig,
    pub(crate) predictor: TrainedPredictor,
}

impl ScalFragServer {
    /// Starts building a server (default: one RTX 3090, default config).
    pub fn builder() -> ScalFragServerBuilder {
        ScalFragServerBuilder::default()
    }

    /// The device pool jobs dispatch onto.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared predictor handle — pass it to another server (or a
    /// [`scalfrag_core`] facade) to reuse its trained models.
    pub fn trained_predictor(&self) -> &TrainedPredictor {
        &self.predictor
    }

    /// The quantized cache key a job would be planned under — exposed so
    /// tests and capacity planning can reason about shape classes.
    pub fn cache_key(&self, job: &MttkrpJob) -> FeatureKey {
        FeatureKey::of(&job.tensor, job.mode, job.rank())
    }
}

/// Builder for [`ScalFragServer`].
#[derive(Default)]
pub struct ScalFragServerBuilder {
    pool: Option<DevicePool>,
    config: Option<ServerConfig>,
    predictor: Option<TrainedPredictor>,
}

impl ScalFragServerBuilder {
    /// Serve on an explicit device pool.
    pub fn pool(mut self, pool: DevicePool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Serve on a single device.
    pub fn device(self, device: DeviceSpec) -> Self {
        self.pool(DevicePool::single(device))
    }

    /// Serve on a multi-GPU cluster node (interconnect contention folded
    /// into each device's effective bandwidth).
    pub fn node(self, node: &NodeSpec) -> Self {
        self.pool(DevicePool::from_node(node))
    }

    /// Replace the whole configuration.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Override admission thresholds.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).admission = admission;
        self
    }

    /// Override plan-cache capacity.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).cache_capacity = capacity;
        self
    }

    /// Toggle plan caching (the cache-off ablation).
    pub fn plan_caching(mut self, on: bool) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).plan_caching = on;
        self
    }

    /// Toggle functional execution (real outputs vs timing-only).
    pub fn functional(mut self, on: bool) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).functional = on;
        self
    }

    /// Allow each job up to `n` resubmissions after a rejection or device
    /// failure (honouring the rejection's `retry_after_s` hint).
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).max_retries = n;
        self
    }

    /// Cap batch groups at `n` fused jobs (`1` = solo dispatches only).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).max_batch = n;
        self
    }

    /// Stretch the arrival horizon by `window_s` so near-future arrivals
    /// can join the batch group about to form.
    pub fn batch_window_s(mut self, window_s: f64) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).batch_window_s = window_s;
        self
    }

    /// Replace the per-tenant QoS configuration (rate limits + weights).
    pub fn qos(mut self, qos: QosConfig) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).qos = qos;
        self
    }

    /// Enable pool autoscaling under `policy`.
    pub fn autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).autoscale = Some(policy);
        self
    }

    /// Warm-start the plan cache from a [`PlanCache::snapshot`].
    pub fn warm_snapshot(mut self, snapshot: String) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).warm_snapshot = Some(snapshot);
        self
    }

    /// Capture an end-of-run cache snapshot into
    /// [`ServeReport::cache_snapshot`].
    pub fn snapshot_cache(mut self, on: bool) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).snapshot_cache = on;
        self
    }

    /// Train the predictor on these nnz tiers (keeps load tests cheap).
    pub fn train_tiers(mut self, tiers: Vec<usize>) -> Self {
        self.config.get_or_insert_with(ServerConfig::default).train_tiers = Some(tiers);
        self
    }

    /// Share an existing trained predictor instead of training lazily —
    /// e.g. the handle from a [`scalfrag_core`] facade, or one shared
    /// across ablation runs so training cost never skews a comparison.
    pub fn predictor(mut self, predictor: TrainedPredictor) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Finishes the server. Predictor models train lazily on the first
    /// job of each rank (shared handles skip even that).
    pub fn build(self) -> ScalFragServer {
        let pool = self.pool.unwrap_or_else(|| DevicePool::single(DeviceSpec::rtx3090()));
        let config = self.config.unwrap_or_default();
        let predictor = self.predictor.unwrap_or_else(|| {
            TrainedPredictor::train_once(
                pool.planning_device(),
                config.train_seed,
                config.train_tiers.clone(),
            )
        });
        ScalFragServer { pool, config, predictor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            jobs: 30,
            shape_classes: 4,
            variants_per_class: 2,
            base_nnz: 3_000,
            ..Default::default()
        }
    }

    fn fast_server() -> ScalFragServer {
        ScalFragServer::builder().train_tiers(vec![3_000, 12_000]).build()
    }

    #[test]
    fn serves_a_small_stream_end_to_end() {
        let server = fast_server();
        let jobs = synthesize(&small_spec());
        let report = server.run(jobs);
        assert_eq!(report.completed.len() + report.rejected.len(), 30);
        assert!(!report.completed.is_empty(), "a small stream must not be all-rejected");
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_jobs_per_s() > 0.0);
        // One plan lookup per fused dispatch, not per job.
        assert!(report.cache.hits + report.cache.misses >= report.dispatch_groups as u64);
        assert!(report.dispatch_groups >= 1);
        for r in &report.completed {
            assert!(r.finish_s >= r.start_s && r.start_s >= r.arrival_s);
            assert!(r.timing.check_consistency().is_ok(), "job {}: bad timing", r.id);
            assert!(r.output.is_none(), "dry mode keeps no outputs");
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let server = fast_server();
        let report = server.run(synthesize(&small_spec()));
        assert!(
            report.cache.hits > report.cache.misses,
            "4 shape classes over 30 jobs must mostly hit: {:?}",
            report.cache
        );
        // Lazy shared training: one rank in the stream → one training.
        assert_eq!(report.predictor_trainings, 1);
    }

    #[test]
    fn functional_mode_returns_outputs() {
        let server =
            ScalFragServer::builder().functional(true).train_tiers(vec![3_000, 12_000]).build();
        let jobs = synthesize(&WorkloadSpec {
            jobs: 4,
            shape_classes: 2,
            variants_per_class: 1,
            ..Default::default()
        });
        let report = server.run(jobs);
        for r in &report.completed {
            let out = r.output.as_ref().expect("functional mode keeps outputs");
            assert!(out.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn shared_predictor_handle_reused_across_servers() {
        let a = fast_server();
        let _ = a.run(synthesize(&small_spec()));
        let b = ScalFragServer::builder()
            .predictor(a.trained_predictor().clone())
            .train_tiers(vec![3_000, 12_000])
            .build();
        let report = b.run(synthesize(&small_spec()));
        assert_eq!(
            report.predictor_trainings, 1,
            "second server must reuse the first server's models"
        );
    }

    #[test]
    fn snapshot_warm_start_turns_misses_into_hits() {
        let cold =
            ScalFragServer::builder().snapshot_cache(true).train_tiers(vec![3_000, 12_000]).build();
        let cold_report = cold.run(synthesize(&small_spec()));
        let snap = cold_report.cache_snapshot.clone().expect("snapshot_cache captures one");
        assert!(cold_report.cache.misses > 0, "a cold cache must miss first");
        let warm = ScalFragServer::builder()
            .warm_snapshot(snap)
            .predictor(cold.trained_predictor().clone())
            .train_tiers(vec![3_000, 12_000])
            .build();
        let warm_report = warm.run(synthesize(&small_spec()));
        assert_eq!(
            warm_report.cache.misses, 0,
            "every shape class was snapshotted, so the warm run never misses: {:?}",
            warm_report.cache
        );
        assert!(warm_report.cache.hits > 0);
    }

    #[test]
    fn cache_key_matches_workload_classes() {
        let server = fast_server();
        let jobs = synthesize(&small_spec());
        let distinct: std::collections::HashSet<_> =
            jobs.iter().map(|j| server.cache_key(j)).collect();
        assert!(
            distinct.len() <= 8,
            "4 classes × ≤2 key-variants expected, got {}",
            distinct.len()
        );
    }
}
