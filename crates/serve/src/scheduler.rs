//! The dispatch engine: a discrete-event loop that admits arriving jobs,
//! orders the queue (priority → tenant fairness → EDF), and executes each
//! dispatched job on the next free device of the pool.
//!
//! Time is the simulated clock shared with the gpusim substrate: arrivals
//! carry simulated timestamps, service times come out of the pipeline
//! executor's timeline, and planning costs use the calibrated constants
//! below — so a serving run is bit-reproducible from its workload.

use crate::admission::{estimate_service_s, Rejected};
use crate::job::MttkrpJob;
use crate::plan_cache::{ExecutionPlan, PlanCache};
use crate::queue::{Pending, TenantQueues};
use crate::report::{JobRecord, ServeReport};
use crate::ScalFragServer;
use scalfrag_cluster::NodeSpec;
use scalfrag_core::PhaseTiming;
use scalfrag_gpusim::{DeviceSpec, Gpu, LaunchConfig};
use scalfrag_pipeline::plan::MAX_SEGMENTS;
use scalfrag_pipeline::{
    execute_hybrid, execute_pipelined, execute_pipelined_dry, split_by_slice_population,
    KernelChoice, PipelinePlan,
};
use scalfrag_tensor::{segment, FeatureKey, TensorFeatures};

/// Simulated cost of planning from scratch (s): predictor inference over
/// the launch space plus segment/stream planning. Calibrated to the
/// paper's "inference < 1 % of an MTTKRP" bound at the small end of the
/// workload range.
pub const PLAN_MISS_S: f64 = 1.5e-4;

/// Simulated cost of a plan-cache hit (s): one hash lookup.
pub const PLAN_HIT_S: f64 = 1.0e-6;

/// The set of simulated devices jobs dispatch onto. Each device runs one
/// job at a time; the scheduler always hands the next job to the device
/// that frees earliest.
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<DeviceSpec>,
}

impl DevicePool {
    /// A pool of explicitly listed (possibly heterogeneous) devices.
    pub fn from_devices(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "a pool needs at least one device");
        Self { devices }
    }

    /// A single-device pool.
    pub fn single(device: DeviceSpec) -> Self {
        Self::from_devices(vec![device])
    }

    /// A pool of `n` identical devices.
    pub fn homogeneous(device: DeviceSpec, n: usize) -> Self {
        assert!(n > 0, "a pool needs at least one device");
        Self::from_devices(vec![device; n])
    }

    /// Builds the pool from a `scalfrag-cluster` node: each device enters
    /// with the node's interconnect contention already folded into its
    /// effective PCIe bandwidth (a 4-GPU shared-host node serves with four
    /// derated links, exactly like the cluster executor would see them).
    pub fn from_node(node: &NodeSpec) -> Self {
        Self::from_devices((0..node.num_devices()).map(|i| node.effective_device(i)).collect())
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The devices, in dispatch-preference order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The device plans are made against (the first — the cache stores one
    /// plan per shape class, validated per executing device at dispatch).
    pub fn planning_device(&self) -> &DeviceSpec {
        &self.devices[0]
    }
}

impl ScalFragServer {
    /// Serves a whole job stream to completion and reports.
    ///
    /// Jobs are processed in arrival order (the stream is sorted by
    /// arrival time, ties broken by id, so callers may submit in any
    /// order). The loop interleaves two event kinds in simulated-time
    /// order: *arrivals* (admission control) and *dispatches* (queue pop →
    /// plan → execute on the earliest-free device).
    pub fn run(&self, mut jobs: Vec<MttkrpJob>) -> ServeReport {
        jobs.sort_by(|a, b| {
            a.arrival_s.partial_cmp(&b.arrival_s).expect("finite arrivals").then(a.id.cmp(&b.id))
        });
        let num_devices = self.pool.num_devices();
        let mut free_at = vec![0.0f64; num_devices];
        let mut queue = TenantQueues::new();
        let mut cache = PlanCache::new(self.config.cache_capacity);
        let mut completed: Vec<JobRecord> = Vec::with_capacity(jobs.len());
        let mut rejected: Vec<Rejected> = Vec::new();
        let mut next = 0usize;
        let mut seq = 0u64;

        while next < jobs.len() || !queue.is_empty() {
            let (dev, dev_free) = earliest_free(&free_at);
            // Admit every arrival that lands before the next dispatch can
            // happen — admission state must be current when the queue pops.
            let arrival_due =
                next < jobs.len() && (queue.is_empty() || jobs[next].arrival_s <= dev_free);
            if arrival_due {
                let job = jobs[next].clone();
                next += 1;
                let est = estimate_service_s(
                    job.transfer_bytes(),
                    job.rank(),
                    self.pool.planning_device(),
                );
                let residual: f64 = free_at.iter().map(|&f| (f - job.arrival_s).max(0.0)).sum();
                let wait_est = (residual + queue.backlog_s()) / num_devices as f64;
                let mean_queued =
                    if queue.is_empty() { est } else { queue.backlog_s() / queue.len() as f64 };
                match self.config.admission.admit(queue.len(), wait_est, mean_queued) {
                    Ok(()) => {
                        queue.push(Pending { job, seq, est_s: est });
                        seq += 1;
                    }
                    Err((reason, retry_after_s)) => rejected.push(Rejected {
                        job_id: job.id,
                        tenant: job.tenant.clone(),
                        reason,
                        retry_after_s,
                        arrival_s: job.arrival_s,
                    }),
                }
            } else {
                let pending = queue.pop().expect("dispatch branch implies non-empty queue");
                let start = free_at[dev].max(pending.job.arrival_s);
                let record = self.execute(&pending.job, dev, start, &mut cache);
                free_at[dev] = record.finish_s;
                completed.push(record);
            }
        }

        let makespan_s = completed.iter().map(|r| r.finish_s).fold(0.0, f64::max);
        ServeReport {
            completed,
            rejected,
            cache: cache.stats(),
            makespan_s,
            peak_queue_depth: queue.peak_depth(),
            predictor_trainings: self.predictor.trainings(),
        }
    }

    /// Plans one job: cache lookup on the quantized feature key, falling
    /// back to the full planning path (predictor → segments/streams →
    /// hybrid decision) on a miss. Returns `(plan, cache_hit, plan_s)`.
    fn plan(&self, job: &MttkrpJob, cache: &mut PlanCache) -> (ExecutionPlan, bool, f64) {
        let features = TensorFeatures::extract(&job.tensor, job.mode);
        let key = FeatureKey::quantize(&features, job.mode, job.rank());
        if self.config.plan_caching {
            if let Some(plan) = cache.get(&key) {
                return (plan, true, PLAN_HIT_S);
            }
        } else {
            cache.count_bypass();
        }
        let config = if self.config.adaptive_launch {
            self.predictor.for_rank(job.rank()).predict_from_features(&features.to_vec())
        } else {
            LaunchConfig::parti_default(job.tensor.nnz())
        };
        let kernel =
            if self.config.tiled_kernel { KernelChoice::Tiled } else { KernelChoice::CooAtomic };
        let segments = segment::auto_segment_count(
            job.tensor.byte_size(),
            job.factors.byte_size(),
            self.pool.planning_device().global_mem_bytes as usize,
            MAX_SEGMENTS,
        )
        .clamp(4, MAX_SEGMENTS);
        let plan = ExecutionPlan {
            config,
            kernel,
            segments,
            streams: segments.min(4),
            hybrid_threshold: self.config.hybrid_threshold,
        };
        if self.config.plan_caching {
            cache.insert(key, plan);
        }
        (plan, false, PLAN_MISS_S)
    }

    /// Executes one job on pool device `dev` starting at `start` (s).
    fn execute(&self, job: &MttkrpJob, dev: usize, start: f64, cache: &mut PlanCache) -> JobRecord {
        let (plan, cache_hit, plan_s) = self.plan(job, cache);
        let device = &self.pool.devices()[dev];
        // A cached plan may have been made against a bigger card; fall
        // back to the heuristic rather than launching an invalid config.
        let config = if plan.config.validate(device).is_ok() {
            plan.config
        } else {
            LaunchConfig::parti_default(job.tensor.nnz())
        };
        let mut gpu = Gpu::new(device.clone());
        let run = match plan.hybrid_threshold {
            Some(threshold) if self.config.functional => {
                let split = split_by_slice_population(&job.tensor, job.mode, threshold);
                execute_hybrid(
                    &mut gpu,
                    &split,
                    &job.factors,
                    job.mode,
                    config,
                    plan.segments,
                    plan.streams,
                    plan.kernel,
                )
            }
            _ => {
                let mut sorted = (*job.tensor).clone();
                sorted.sort_for_mode(job.mode);
                let pplan =
                    PipelinePlan::new(&sorted, job.mode, config, plan.segments, plan.streams);
                if self.config.functional {
                    execute_pipelined(&mut gpu, &sorted, &job.factors, &pplan, plan.kernel)
                } else {
                    execute_pipelined_dry(&mut gpu, &sorted, &job.factors, &pplan, plan.kernel)
                }
            }
        };
        let timing = PhaseTiming::from_timeline(&run.timeline).with_queue(start - job.arrival_s);
        debug_assert!(timing.check_consistency().is_ok());
        let finish_s = start + plan_s + timing.total_s;
        JobRecord {
            id: job.id,
            tenant: job.tenant.clone(),
            priority: job.priority,
            device: dev,
            arrival_s: job.arrival_s,
            start_s: start,
            finish_s,
            plan_s,
            cache_hit,
            timing,
            deadline_s: job.deadline_s,
            output: if self.config.functional { Some(run.output) } else { None },
        }
    }
}

/// Index and free-time of the earliest-free device (lowest index wins
/// ties, deterministically).
fn earliest_free(free_at: &[f64]) -> (usize, f64) {
    let mut best = 0usize;
    for (i, &t) in free_at.iter().enumerate().skip(1) {
        if t < free_at[best] {
            best = i;
        }
    }
    (best, free_at[best])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_constructors() {
        let p = DevicePool::homogeneous(DeviceSpec::rtx3090(), 3);
        assert_eq!(p.num_devices(), 3);
        assert_eq!(p.planning_device().name, DeviceSpec::rtx3090().name);
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4);
        let p = DevicePool::from_node(&node);
        assert_eq!(p.num_devices(), 4);
        assert!(
            p.devices()[0].pcie_h2d_gbs < DeviceSpec::rtx3090().pcie_h2d_gbs,
            "shared-host contention must be folded in"
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_rejected() {
        let _ = DevicePool::from_devices(Vec::new());
    }

    #[test]
    fn earliest_free_prefers_lowest_index_on_tie() {
        assert_eq!(earliest_free(&[1.0, 1.0, 0.5]), (2, 0.5));
        assert_eq!(earliest_free(&[1.0, 1.0]), (0, 1.0));
    }
}
