//! The dispatch engine: a discrete-event loop that admits arriving jobs,
//! orders the queue (priority → tenant fairness → EDF), and executes each
//! dispatched job on the next free device of the pool.
//!
//! Time is the simulated clock shared with the gpusim substrate: arrivals
//! carry simulated timestamps, service times come out of the pipeline
//! executor's timeline, and planning costs use the calibrated constants
//! below — so a serving run is bit-reproducible from its workload.

use crate::admission::{estimate_service_s, RejectReason, Rejected};
use crate::job::MttkrpJob;
use crate::plan_cache::{ExecutionPlan, PlanCache};
use crate::queue::{Pending, TenantQueues};
use crate::report::{JobRecord, ServeReport};
use crate::ScalFragServer;
use scalfrag_cluster::NodeSpec;
use scalfrag_core::PhaseTiming;
use scalfrag_exec::PlanBuilder;
use scalfrag_faults::{DeviceHealth, FaultInjector, OpClass, OpVerdict, RecoveryAction};
use scalfrag_gpusim::{DeviceSpec, Gpu, LaunchConfig};
use scalfrag_pipeline::plan::MAX_SEGMENTS;
use scalfrag_pipeline::{
    build_pipelined_plan, execute_hybrid, execute_pipelined, split_by_slice_population, ExecMode,
    KernelChoice, PipelinePlan,
};
use scalfrag_tensor::{segment, FeatureKey, TensorFeatures};

/// Simulated cost of planning from scratch (s): predictor inference over
/// the launch space plus segment/stream planning. Calibrated to the
/// paper's "inference < 1 % of an MTTKRP" bound at the small end of the
/// workload range.
pub const PLAN_MISS_S: f64 = 1.5e-4;

/// Simulated cost of a plan-cache hit (s): one hash lookup.
pub const PLAN_HIT_S: f64 = 1.0e-6;

/// The set of simulated devices jobs dispatch onto. Each device runs one
/// job at a time; the scheduler always hands the next job to the device
/// that frees earliest.
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<DeviceSpec>,
}

impl DevicePool {
    /// A pool of explicitly listed (possibly heterogeneous) devices.
    pub fn from_devices(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "a pool needs at least one device");
        Self { devices }
    }

    /// A single-device pool.
    pub fn single(device: DeviceSpec) -> Self {
        Self::from_devices(vec![device])
    }

    /// A pool of `n` identical devices.
    pub fn homogeneous(device: DeviceSpec, n: usize) -> Self {
        assert!(n > 0, "a pool needs at least one device");
        Self::from_devices(vec![device; n])
    }

    /// Builds the pool from a `scalfrag-cluster` node: each device enters
    /// with the node's interconnect contention already folded into its
    /// effective PCIe bandwidth (a 4-GPU shared-host node serves with four
    /// derated links, exactly like the cluster executor would see them).
    pub fn from_node(node: &NodeSpec) -> Self {
        Self::from_devices((0..node.num_devices()).map(|i| node.effective_device(i)).collect())
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The devices, in dispatch-preference order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The device plans are made against (the first — the cache stores one
    /// plan per shape class, validated per executing device at dispatch).
    pub fn planning_device(&self) -> &DeviceSpec {
        &self.devices[0]
    }
}

impl ScalFragServer {
    /// Serves a whole job stream to completion and reports.
    ///
    /// Jobs are processed in arrival order (the stream is sorted by
    /// arrival time, ties broken by id, so callers may submit in any
    /// order). The loop interleaves two event kinds in simulated-time
    /// order: *arrivals* (admission control) and *dispatches* (queue pop →
    /// plan → execute on the earliest-free device).
    pub fn run(&self, jobs: Vec<MttkrpJob>) -> ServeReport {
        self.serve(jobs, None)
    }

    /// Serves a job stream under injected faults: the same event loop as
    /// [`ScalFragServer::run`], with the injector polled at every
    /// scheduling decision.
    ///
    /// * **Dispatch** polls [`FaultInjector::on_op`]: a down device parks
    ///   until it heals (forever, if the failure is permanent) and the job
    ///   reroutes; an aborted kernel charges its full service time and the
    ///   job fails over.
    /// * **Mid-service failures** ([`FaultInjector::fail_between`]) kill
    ///   the in-flight job at the fault time and requeue it (counted in
    ///   [`ServeReport::resubmissions`]) while it has retry budget
    ///   ([`crate::ServerConfig::max_retries`]); past the budget it is
    ///   rejected with [`RejectReason::DeviceFailure`].
    /// * **Stragglers** execute against a derated
    ///   [`DeviceSpec`](scalfrag_gpusim::DeviceSpec::derated).
    /// * **Admission degrades** with pool health: down devices shrink the
    ///   makespan budget via [`crate::AdmissionPolicy::degraded`].
    ///
    /// Given the same workload and fault plan the run is bit-reproducible,
    /// injector log included.
    pub fn run_with_faults(
        &self,
        jobs: Vec<MttkrpJob>,
        injector: &mut FaultInjector,
    ) -> ServeReport {
        self.serve(jobs, Some(injector))
    }

    fn serve(
        &self,
        mut jobs: Vec<MttkrpJob>,
        mut injector: Option<&mut FaultInjector>,
    ) -> ServeReport {
        jobs.sort_by(|a, b| {
            a.arrival_s.partial_cmp(&b.arrival_s).expect("finite arrivals").then(a.id.cmp(&b.id))
        });
        let num_devices = self.pool.num_devices();
        let max_retries = self.config.max_retries;
        let mut free_at = vec![0.0f64; num_devices];
        let mut queue = TenantQueues::new();
        let mut cache = PlanCache::new(self.config.cache_capacity);
        let mut completed: Vec<JobRecord> = Vec::with_capacity(jobs.len());
        let mut rejected: Vec<Rejected> = Vec::new();
        // Resubmitted jobs, sorted descending by (arrival, id, attempt) so
        // `pop()` yields the earliest; `job.arrival_s` is the resubmission
        // time, so these merge into the arrival stream like fresh jobs.
        let mut resubmit: Vec<(MttkrpJob, u32)> = Vec::new();
        let mut next = 0usize;
        let mut seq = 0u64;
        let mut resubmissions = 0usize;
        let mut timing_inconsistencies = 0usize;
        let mut first_inconsistent_job = None;

        while next < jobs.len() || !resubmit.is_empty() || !queue.is_empty() {
            let (dev, dev_free) = earliest_free(&free_at);
            // The next submission event across fresh arrivals and pending
            // resubmissions (earlier time wins, then lower id).
            let fresh = jobs.get(next).map(|j| (j.arrival_s, j.id));
            let resub = resubmit.last().map(|(j, _)| (j.arrival_s, j.id));
            let take_fresh = match (fresh, resub) {
                (Some(f), Some(r)) => f <= r,
                (Some(_), None) => true,
                _ => false,
            };
            let arrival_s = if take_fresh { fresh.map(|f| f.0) } else { resub.map(|r| r.0) };
            // Admit every submission that lands before the next dispatch
            // can happen — admission state must be current when the queue
            // pops.
            let arrival_due = arrival_s.is_some_and(|t| queue.is_empty() || t <= dev_free);
            if arrival_due {
                let (job, attempt) = if take_fresh {
                    let job = jobs[next].clone();
                    next += 1;
                    (job, 1)
                } else {
                    resubmit.pop().expect("resub event implies non-empty resubmit list")
                };
                let est = estimate_service_s(
                    job.transfer_bytes(),
                    job.rank(),
                    self.pool.planning_device(),
                );
                let residual: f64 = free_at
                    .iter()
                    .map(|&f| if f.is_finite() { (f - job.arrival_s).max(0.0) } else { 0.0 })
                    .sum();
                let wait_est = (residual + queue.backlog_s()) / num_devices as f64;
                let mean_queued =
                    if queue.is_empty() { est } else { queue.backlog_s() / queue.len() as f64 };
                let policy = match injector.as_deref_mut() {
                    Some(inj) => {
                        let healthy = (0..num_devices)
                            .filter(|&d| {
                                !matches!(
                                    inj.health_at(d, job.arrival_s),
                                    DeviceHealth::Down { .. }
                                )
                            })
                            .count();
                        self.config.admission.degraded(healthy, num_devices)
                    }
                    None => self.config.admission,
                };
                match policy.admit(queue.len(), wait_est, mean_queued) {
                    Ok(()) => {
                        queue.push(Pending { job, seq, est_s: est, attempt });
                        seq += 1;
                    }
                    Err((_reason, retry_after_s)) if attempt <= max_retries => {
                        let mut job = job;
                        job.arrival_s += retry_after_s;
                        resubmissions += 1;
                        push_resubmission(&mut resubmit, job, attempt + 1);
                    }
                    Err((reason, retry_after_s)) => rejected.push(Rejected {
                        job_id: job.id,
                        tenant: job.tenant.clone(),
                        reason,
                        retry_after_s,
                        arrival_s: job.arrival_s,
                    }),
                }
            } else {
                let pending = queue.pop().expect("dispatch branch implies non-empty queue");
                let start = free_at[dev].max(pending.job.arrival_s);
                if !start.is_finite() {
                    // Every device is permanently down: drain the queue
                    // into final rejections rather than spinning.
                    rejected.push(Rejected {
                        job_id: pending.job.id,
                        tenant: pending.job.tenant.clone(),
                        reason: RejectReason::DeviceFailure { device: dev },
                        retry_after_s: f64::INFINITY,
                        arrival_s: pending.job.arrival_s,
                    });
                    continue;
                }
                let mut aborted = false;
                let mut spec = self.pool.devices()[dev].clone();
                if let Some(inj) = injector.as_deref_mut() {
                    match inj.on_op(dev, OpClass::Kernel, start) {
                        OpVerdict::DeviceDown { until_s } => {
                            // The job never started: park the device until
                            // it heals and reroute the job untouched.
                            free_at[dev] = until_s.unwrap_or(f64::INFINITY);
                            inj.record_recovery(
                                dev,
                                start,
                                RecoveryAction::Requeue { job: pending.job.id },
                            );
                            queue.push(pending);
                            continue;
                        }
                        OpVerdict::Aborted => aborted = true,
                        OpVerdict::Ok | OpVerdict::Corrupted => {}
                    }
                    if let DeviceHealth::Straggling { derate } = inj.health_at(dev, start) {
                        spec = spec.derated(derate);
                    }
                }
                let record =
                    self.execute(&pending.job, dev, &spec, start, pending.attempt, &mut cache);
                let failure = match injector.as_deref_mut() {
                    Some(inj) if !aborted => inj.fail_between(dev, record.start_s, record.finish_s),
                    _ => None,
                };
                if aborted || failure.is_some() {
                    // An abort charges the full (wasted) service time but
                    // leaves the device up; a mid-service device failure
                    // kills the job at the fault time and takes the device
                    // with it until it heals.
                    let (fail_s, free_again_s) = match failure {
                        Some((t, until_s)) => (t, until_s.unwrap_or(f64::INFINITY)),
                        None => (record.finish_s, record.finish_s),
                    };
                    free_at[dev] = free_again_s.max(fail_s);
                    if pending.attempt <= max_retries {
                        if let Some(inj) = injector.as_deref_mut() {
                            inj.record_recovery(
                                dev,
                                fail_s,
                                RecoveryAction::Requeue { job: pending.job.id },
                            );
                        }
                        let mut job = pending.job;
                        job.arrival_s = fail_s;
                        resubmissions += 1;
                        push_resubmission(&mut resubmit, job, pending.attempt + 1);
                    } else {
                        rejected.push(Rejected {
                            job_id: pending.job.id,
                            tenant: pending.job.tenant.clone(),
                            reason: RejectReason::DeviceFailure { device: dev },
                            retry_after_s: (free_again_s - fail_s).max(1e-6),
                            arrival_s: fail_s,
                        });
                    }
                    continue;
                }
                if record.timing.check_consistency().is_err() {
                    timing_inconsistencies += 1;
                    first_inconsistent_job.get_or_insert(record.id);
                }
                free_at[dev] = record.finish_s;
                completed.push(record);
            }
        }

        let makespan_s = completed.iter().map(|r| r.finish_s).fold(0.0, f64::max);
        ServeReport {
            completed,
            rejected,
            cache: cache.stats(),
            makespan_s,
            peak_queue_depth: queue.peak_depth(),
            predictor_trainings: self.predictor.trainings(),
            resubmissions,
            timing_inconsistencies,
            first_inconsistent_job,
        }
    }

    /// Plans one job: cache lookup on the quantized feature key, falling
    /// back to the full planning path (predictor → segments/streams →
    /// hybrid decision) on a miss. Returns `(plan, cache_hit, plan_s)`.
    fn plan(&self, job: &MttkrpJob, cache: &mut PlanCache) -> (ExecutionPlan, bool, f64) {
        let features = TensorFeatures::extract(&job.tensor, job.mode);
        let key = FeatureKey::quantize(&features, job.mode, job.rank());
        if self.config.plan_caching {
            if let Some(plan) = cache.get(&key) {
                return (plan, true, PLAN_HIT_S);
            }
        } else {
            cache.count_bypass();
        }
        let config = if self.config.adaptive_launch {
            self.predictor.for_rank(job.rank()).predict_from_features(&features.to_vec())
        } else {
            LaunchConfig::parti_default(job.tensor.nnz())
        };
        let kernel =
            if self.config.tiled_kernel { KernelChoice::Tiled } else { KernelChoice::CooAtomic };
        let segments = segment::auto_segment_count(
            job.tensor.byte_size(),
            job.factors.byte_size(),
            self.pool.planning_device().global_mem_bytes as usize,
            MAX_SEGMENTS,
        )
        .clamp(4, MAX_SEGMENTS);
        let plan = ExecutionPlan {
            config,
            kernel,
            segments,
            streams: segments.min(4),
            hybrid_threshold: self.config.hybrid_threshold,
        };
        if self.config.plan_caching {
            cache.insert(key, plan);
        }
        (plan, false, PLAN_MISS_S)
    }

    /// Executes one job on pool device `dev` starting at `start` (s).
    /// `device` is the spec to simulate against — normally the pool's, but
    /// a straggling device passes a derated copy.
    fn execute(
        &self,
        job: &MttkrpJob,
        dev: usize,
        device: &DeviceSpec,
        start: f64,
        attempt: u32,
        cache: &mut PlanCache,
    ) -> JobRecord {
        let (plan, cache_hit, plan_s) = self.plan(job, cache);
        // A cached plan may have been made against a bigger card; fall
        // back to the heuristic rather than launching an invalid config.
        let config = if plan.config.validate(device).is_ok() {
            plan.config
        } else {
            LaunchConfig::parti_default(job.tensor.nnz())
        };
        let mut gpu = Gpu::new(device.clone());
        let run = match plan.hybrid_threshold {
            Some(threshold) if self.config.functional => {
                let split = split_by_slice_population(&job.tensor, job.mode, threshold);
                execute_hybrid(
                    &mut gpu,
                    &split,
                    &job.factors,
                    job.mode,
                    config,
                    plan.segments,
                    plan.streams,
                    plan.kernel,
                    ExecMode::Functional,
                )
            }
            _ => {
                let mut sorted = (*job.tensor).clone();
                sorted.sort_for_mode(job.mode);
                let pplan =
                    PipelinePlan::new(&sorted, job.mode, config, plan.segments, plan.streams);
                let exec =
                    if self.config.functional { ExecMode::Functional } else { ExecMode::Dry };
                execute_pipelined(&mut gpu, &sorted, &job.factors, &pplan, plan.kernel, exec)
            }
        };
        let timing = PhaseTiming::from_timeline(&run.timeline).with_queue(start - job.arrival_s);
        // Consistency is checked (and surfaced) by the serve loop via
        // `ServeReport::timing_inconsistencies` — not asserted away here.
        let finish_s = start + plan_s + timing.total_s;
        JobRecord {
            id: job.id,
            tenant: job.tenant.clone(),
            priority: job.priority,
            device: dev,
            arrival_s: job.arrival_s,
            start_s: start,
            finish_s,
            plan_s,
            cache_hit,
            timing,
            deadline_s: job.deadline_s,
            attempt,
            output: if self.config.functional { Some(run.output) } else { None },
        }
    }
}

/// The serving layer's registered plan builders: the plan a default
/// functional server dispatches a job onto, with the predictor swapped
/// for the ParTI heuristic so building stays training-free and
/// deterministic. Mirrors the `path:serve-functional` conformance
/// backend.
pub fn plan_builders() -> Vec<PlanBuilder> {
    vec![PlanBuilder::new("serve-functional", |tensor, factors, mode| {
        let device = DeviceSpec::rtx3090();
        let config = LaunchConfig::parti_default(tensor.nnz());
        let segments = segment::auto_segment_count(
            tensor.byte_size(),
            factors.byte_size(),
            device.global_mem_bytes as usize,
            MAX_SEGMENTS,
        )
        .clamp(4, MAX_SEGMENTS);
        let mut sorted = tensor.clone();
        sorted.sort_for_mode(mode);
        let pplan = PipelinePlan::new(&sorted, mode, config, segments, segments.min(4));
        let mut p = build_pipelined_plan(&device, &sorted, factors, &pplan, KernelChoice::Tiled);
        p.name = "serve-functional";
        p
    })]
}

/// Inserts a resubmission keeping the list sorted descending by
/// (arrival, id, attempt), so `pop()` always yields the earliest event
/// deterministically.
fn push_resubmission(resubmit: &mut Vec<(MttkrpJob, u32)>, job: MttkrpJob, attempt: u32) {
    resubmit.push((job, attempt));
    resubmit.sort_by(|(a, aa), (b, ba)| {
        b.arrival_s
            .partial_cmp(&a.arrival_s)
            .expect("finite resubmission times")
            .then(b.id.cmp(&a.id))
            .then(ba.cmp(aa))
    });
}

/// Index and free-time of the earliest-free device (lowest index wins
/// ties, deterministically).
fn earliest_free(free_at: &[f64]) -> (usize, f64) {
    let mut best = 0usize;
    for (i, &t) in free_at.iter().enumerate().skip(1) {
        if t < free_at[best] {
            best = i;
        }
    }
    (best, free_at[best])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_constructors() {
        let p = DevicePool::homogeneous(DeviceSpec::rtx3090(), 3);
        assert_eq!(p.num_devices(), 3);
        assert_eq!(p.planning_device().name, DeviceSpec::rtx3090().name);
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4);
        let p = DevicePool::from_node(&node);
        assert_eq!(p.num_devices(), 4);
        assert!(
            p.devices()[0].pcie_h2d_gbs < DeviceSpec::rtx3090().pcie_h2d_gbs,
            "shared-host contention must be folded in"
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_rejected() {
        let _ = DevicePool::from_devices(Vec::new());
    }

    #[test]
    fn earliest_free_prefers_lowest_index_on_tie() {
        assert_eq!(earliest_free(&[1.0, 1.0, 0.5]), (2, 0.5));
        assert_eq!(earliest_free(&[1.0, 1.0]), (0, 1.0));
    }

    mod faulted {
        use crate::admission::AdmissionPolicy;
        use crate::scheduler::DevicePool;
        use crate::workload::{synthesize, WorkloadSpec};
        use crate::{MttkrpJob, ScalFragServer};
        use scalfrag_faults::{FaultInjector, FaultKind, FaultPlan, FaultTrigger};
        use scalfrag_gpusim::DeviceSpec;

        fn jobs(n: usize) -> Vec<MttkrpJob> {
            synthesize(&WorkloadSpec {
                jobs: n,
                shape_classes: 2,
                variants_per_class: 1,
                base_nnz: 3_000,
                ..Default::default()
            })
        }

        fn server(devices: usize, max_retries: u32) -> ScalFragServer {
            ScalFragServer::builder()
                .pool(DevicePool::homogeneous(DeviceSpec::rtx3090(), devices))
                .admission(AdmissionPolicy { max_queue_depth: 64, makespan_budget_s: 10.0 })
                .train_tiers(vec![3_000])
                .max_retries(max_retries)
                .build()
        }

        #[test]
        fn permanent_device_failure_reroutes_onto_the_survivor() {
            let plan = FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(1e-3),
                FaultKind::DeviceFail { down_s: None },
            );
            let mut inj = FaultInjector::new(plan);
            let report = server(2, 2).run_with_faults(jobs(8), &mut inj);
            assert_eq!(report.completed.len(), 8, "retries must rescue every job");
            assert!(report.rejected.is_empty());
            for r in &report.completed {
                assert!(
                    r.device != 0 || r.finish_s < 1e-3,
                    "job {} finished on the dead device after the failure",
                    r.id
                );
            }
            assert_eq!(inj.log().injected(), 1);
        }

        #[test]
        fn rejection_retries_honour_the_backoff_hint() {
            let tight = AdmissionPolicy { max_queue_depth: 64, makespan_budget_s: 2e-4 };
            // A near-simultaneous burst: the backlog budget must reject
            // part of it, and retries pick the rejects up once it drains.
            let burst = || {
                synthesize(&WorkloadSpec {
                    jobs: 12,
                    shape_classes: 2,
                    variants_per_class: 1,
                    base_nnz: 3_000,
                    mean_interarrival_s: 2e-5,
                    ..Default::default()
                })
            };
            let base = ScalFragServer::builder().admission(tight).train_tiers(vec![3_000]).build();
            let no_retry = base.run(burst());
            let retry_server = ScalFragServer::builder()
                .admission(tight)
                .train_tiers(vec![3_000])
                .max_retries(3)
                .predictor(base.trained_predictor().clone())
                .build();
            let with_retry = retry_server.run(burst());
            assert!(!no_retry.rejected.is_empty(), "the tight budget must actually bite");
            assert_eq!(no_retry.resubmissions, 0, "max_retries=0 keeps rejections final");
            assert!(with_retry.resubmissions > 0, "retries must resubmit rejected jobs");
            assert_eq!(
                with_retry.completed.len() + with_retry.rejected.len(),
                12,
                "every job terminates exactly once"
            );
            assert!(
                with_retry.completed.len() > no_retry.completed.len(),
                "resubmitting after the backoff hint must rescue jobs ({} vs {})",
                with_retry.completed.len(),
                no_retry.completed.len()
            );
            assert!(with_retry.completed.iter().any(|r| r.attempt > 1));
        }

        #[test]
        fn straggler_stretches_the_makespan_but_serves_everything() {
            let healthy = server(1, 0).run(jobs(6));
            let mut inj = FaultInjector::new(FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(0.0),
                FaultKind::Straggler { derate: 3.0 },
            ));
            let slow = server(1, 0).run_with_faults(jobs(6), &mut inj);
            assert_eq!(slow.completed.len(), healthy.completed.len());
            assert!(
                slow.makespan_s > healthy.makespan_s,
                "a 3x straggler must stretch the makespan ({} vs {})",
                slow.makespan_s,
                healthy.makespan_s
            );
        }

        #[test]
        fn all_devices_dead_drains_into_device_failure_rejections() {
            let mut inj = FaultInjector::new(FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(0.0),
                FaultKind::DeviceFail { down_s: None },
            ));
            let report = server(1, 1).run_with_faults(jobs(5), &mut inj);
            assert!(report.completed.is_empty(), "a dead pool completes nothing");
            assert!(report.device_failure_rejections() >= 1);
            assert_eq!(report.completed.len() + report.rejected.len(), 5);
        }

        #[test]
        fn faulted_serving_is_bit_reproducible() {
            let plan = || {
                FaultPlan::new()
                    .fault(
                        0,
                        FaultTrigger::AtTime(8e-4),
                        FaultKind::DeviceFail { down_s: Some(2e-3) },
                    )
                    .fault(1, FaultTrigger::AtTime(0.0), FaultKind::Straggler { derate: 1.5 })
            };
            let mut a = FaultInjector::new(plan());
            let mut b = FaultInjector::new(plan());
            let ra = server(2, 2).run_with_faults(jobs(8), &mut a);
            let rb = server(2, 2).run_with_faults(jobs(8), &mut b);
            assert_eq!(ra.fingerprint(), rb.fingerprint(), "serve fingerprints must match");
            assert_eq!(
                a.log().fingerprint(),
                b.log().fingerprint(),
                "fault logs must be identical run to run"
            );
        }

        #[test]
        fn transient_outage_parks_the_device_until_it_heals() {
            let mut inj = FaultInjector::new(FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(5e-4),
                FaultKind::DeviceFail { down_s: Some(3e-3) },
            ));
            let report = server(1, 3).run_with_faults(jobs(6), &mut inj);
            assert_eq!(report.completed.len(), 6, "a transient outage must not lose jobs");
            assert!(
                report.makespan_s >= 5e-4 + 3e-3,
                "the makespan must cover the outage window, got {}",
                report.makespan_s
            );
            assert!(inj.log().recoveries() >= 1, "the requeue must be logged");
        }
    }
}
