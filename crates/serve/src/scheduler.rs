//! The dispatch engine: a discrete-event loop that admits arriving jobs
//! (token-bucket rate limits, bounded queue, makespan budget), orders the
//! queue (WFQ across tenants → SLO-aware EDF within), and dispatches
//! *batch groups* — compatible queued jobs fused into one ScheduleIR plan
//! per [`crate::batch`] — onto the earliest-free active device of the
//! pool, growing and shrinking the active set via [`crate::autoscale`].
//!
//! Time is the simulated clock shared with the gpusim substrate: arrivals
//! carry simulated timestamps, service times come out of the fused plan's
//! interpreted timeline, and planning costs use the calibrated constants
//! below — so a serving run is bit-reproducible from its workload.

use crate::admission::{estimate_service_s, RejectReason, Rejected};
use crate::autoscale::Autoscaler;
use crate::batch::BatchGroup;
use crate::job::MttkrpJob;
use crate::plan_cache::{ExecutionPlan, PlanCache};
use crate::queue::{Pending, QosQueues, TokenBucket};
use crate::report::{JobRecord, ServeReport};
use crate::ScalFragServer;
use scalfrag_autotune::prefer_batched;
use scalfrag_cluster::NodeSpec;
use scalfrag_core::PhaseTiming;
use scalfrag_exec::{run_plan, PlanBuilder};
use scalfrag_faults::{DeviceHealth, FaultInjector, OpClass, OpVerdict, RecoveryAction};
use scalfrag_gpusim::{DeviceSpec, Gpu, LaunchConfig, SpanKind};
use scalfrag_pipeline::plan::MAX_SEGMENTS;
use scalfrag_pipeline::{
    build_batched_plan, build_pipelined_plan, execute_hybrid, split_by_slice_population,
    BatchedJobSpec, ExecMode, KernelChoice, PipelinePlan,
};
use scalfrag_tensor::{segment, CooTensor, FeatureKey, TensorFeatures};
use std::collections::HashMap;
use std::sync::Arc;

/// Simulated cost of planning from scratch (s): predictor inference over
/// the launch space plus segment/stream planning. Calibrated to the
/// paper's "inference < 1 % of an MTTKRP" bound at the small end of the
/// workload range.
pub const PLAN_MISS_S: f64 = 1.5e-4;

/// Simulated cost of a plan-cache hit (s): one hash lookup.
pub const PLAN_HIT_S: f64 = 1.0e-6;

/// The set of simulated devices jobs dispatch onto. Each device runs one
/// batch group at a time; the scheduler always hands the next group to
/// the *active* device that frees earliest (with autoscaling off, every
/// device is active).
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<DeviceSpec>,
}

impl DevicePool {
    /// A pool of explicitly listed (possibly heterogeneous) devices.
    pub fn from_devices(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "a pool needs at least one device");
        Self { devices }
    }

    /// A single-device pool.
    pub fn single(device: DeviceSpec) -> Self {
        Self::from_devices(vec![device])
    }

    /// A pool of `n` identical devices.
    pub fn homogeneous(device: DeviceSpec, n: usize) -> Self {
        assert!(n > 0, "a pool needs at least one device");
        Self::from_devices(vec![device; n])
    }

    /// Builds the pool from a `scalfrag-cluster` node: each device enters
    /// with the node's interconnect contention already folded into its
    /// effective PCIe bandwidth (a 4-GPU shared-host node serves with four
    /// derated links, exactly like the cluster executor would see them).
    pub fn from_node(node: &NodeSpec) -> Self {
        Self::from_devices((0..node.num_devices()).map(|i| node.effective_device(i)).collect())
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The devices, in dispatch-preference order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The device plans are made against (the first — the cache stores one
    /// plan per shape class, validated per executing device at dispatch).
    pub fn planning_device(&self) -> &DeviceSpec {
        &self.devices[0]
    }
}

/// Memoized per-(tensor handle, mode) planning artifacts. Feature
/// extraction and mode-sorting are O(nnz), and a serving workload cycles
/// a small catalog of tensor handles over millions of jobs — the memo
/// makes repeat planning O(1). Keys are raw `Arc` addresses, which is
/// sound here because the job stream keeps every tensor alive for the
/// whole run and the maps are only probed, never iterated.
#[derive(Default)]
struct PlannerMemo {
    features: HashMap<(usize, usize), TensorFeatures>,
    sorted: HashMap<(usize, usize), Arc<CooTensor>>,
}

impl PlannerMemo {
    fn features_of(&mut self, job: &MttkrpJob) -> &TensorFeatures {
        self.features
            .entry((Arc::as_ptr(&job.tensor) as usize, job.mode))
            .or_insert_with(|| TensorFeatures::extract(&job.tensor, job.mode))
    }

    fn sorted_of(&mut self, job: &MttkrpJob) -> Arc<CooTensor> {
        Arc::clone(self.sorted.entry((Arc::as_ptr(&job.tensor) as usize, job.mode)).or_insert_with(
            || {
                let mut sorted = (*job.tensor).clone();
                sorted.sort_for_mode(job.mode);
                Arc::new(sorted)
            },
        ))
    }
}

impl ScalFragServer {
    /// Serves a whole job stream to completion and reports.
    ///
    /// Jobs are processed in arrival order (the stream is sorted by
    /// arrival time, ties broken by id, so callers may submit in any
    /// order). The loop interleaves two event kinds in simulated-time
    /// order: *arrivals* (rate limiting + admission control) and
    /// *dispatches* (queue pop → batch-group formation → fused plan →
    /// interpret on the earliest-free active device).
    pub fn run(&self, jobs: Vec<MttkrpJob>) -> ServeReport {
        self.serve(jobs, None)
    }

    /// Serves a job stream under injected faults: the same event loop as
    /// [`ScalFragServer::run`], with the injector polled at every
    /// scheduling decision.
    ///
    /// * **Dispatch** polls [`FaultInjector::on_op`] before the group
    ///   forms: a down device parks until it heals (forever, if the
    ///   failure is permanent) and the lead reroutes; an aborted kernel
    ///   charges the group's full service time and every member fails
    ///   over.
    /// * **Mid-service failures** ([`FaultInjector::fail_between`]) kill
    ///   the in-flight group at the fault time and requeue each member
    ///   (counted in [`ServeReport::resubmissions`]) while it has retry
    ///   budget ([`crate::ServerConfig::max_retries`]); past the budget a
    ///   member is rejected with [`RejectReason::DeviceFailure`].
    /// * **Stragglers** execute against a derated
    ///   [`DeviceSpec`](scalfrag_gpusim::DeviceSpec::derated).
    /// * **Admission degrades** with pool health: down devices shrink the
    ///   makespan budget via [`crate::AdmissionPolicy::degraded`].
    ///
    /// Given the same workload and fault plan the run is bit-reproducible,
    /// injector log included.
    pub fn run_with_faults(
        &self,
        jobs: Vec<MttkrpJob>,
        injector: &mut FaultInjector,
    ) -> ServeReport {
        self.serve(jobs, Some(injector))
    }

    fn serve(
        &self,
        mut jobs: Vec<MttkrpJob>,
        mut injector: Option<&mut FaultInjector>,
    ) -> ServeReport {
        jobs.sort_by(|a, b| {
            a.arrival_s.partial_cmp(&b.arrival_s).expect("finite arrivals").then(a.id.cmp(&b.id))
        });
        let num_devices = self.pool.num_devices();
        let max_retries = self.config.max_retries;
        let batch_window = self.config.batch_window_s.max(0.0);
        let mut free_at = vec![0.0f64; num_devices];
        let mut autoscaler = self.config.autoscale.map(Autoscaler::new);
        let mut active = match &autoscaler {
            Some(a) => a.initial_active(num_devices),
            None => vec![true; num_devices],
        };
        let mut queue = QosQueues::with_weights(&self.config.qos.tenant_weights);
        let mut buckets: HashMap<String, TokenBucket> = HashMap::new();
        let mut cache = match &self.config.warm_snapshot {
            Some(snap) => PlanCache::restore(snap)
                .expect("ServerConfig::warm_snapshot is not a valid plan-cache snapshot"),
            None => PlanCache::new(self.config.cache_capacity),
        };
        let mut memo = PlannerMemo::default();
        let mut completed: Vec<JobRecord> = Vec::with_capacity(jobs.len());
        let mut rejected: Vec<Rejected> = Vec::new();
        // Resubmitted jobs, sorted descending by (arrival, id, attempt) so
        // `pop()` yields the earliest; `job.arrival_s` is the resubmission
        // time, so these merge into the arrival stream like fresh jobs.
        let mut resubmit: Vec<(MttkrpJob, u32)> = Vec::new();
        let mut next = 0usize;
        let mut seq = 0u64;
        let mut resubmissions = 0usize;
        let mut dispatch_groups = 0usize;
        let mut timing_inconsistencies = 0usize;
        let mut first_inconsistent_job = None;

        while next < jobs.len() || !resubmit.is_empty() || !queue.is_empty() {
            let (dev, dev_free) = earliest_free_active(&free_at, &active);
            // The next submission event across fresh arrivals and pending
            // resubmissions (earlier time wins, then lower id).
            let fresh = jobs.get(next).map(|j| (j.arrival_s, j.id));
            let resub = resubmit.last().map(|(j, _)| (j.arrival_s, j.id));
            let take_fresh = match (fresh, resub) {
                (Some(f), Some(r)) => f <= r,
                (Some(_), None) => true,
                _ => false,
            };
            let arrival_s = if take_fresh { fresh.map(|f| f.0) } else { resub.map(|r| r.0) };
            // Admit every submission that lands before the next dispatch
            // can happen — admission state must be current when the queue
            // pops. `batch_window_s` stretches the horizon so near-future
            // arrivals may still join the group about to form (the members
            // already ready are charged the wait as `batch_wait_s`).
            let arrival_due =
                arrival_s.is_some_and(|t| queue.is_empty() || t <= dev_free + batch_window);
            if arrival_due {
                let (job, attempt) = if take_fresh {
                    let job = jobs[next].clone();
                    next += 1;
                    (job, 1)
                } else {
                    resubmit.pop().expect("resub event implies non-empty resubmit list")
                };
                let now = job.arrival_s;
                if let Some(a) = autoscaler.as_mut() {
                    a.step(now, queue.len(), &mut active, &mut free_at);
                }
                // Per-tenant token bucket: the QoS gate in front of the
                // shared admission gate.
                if let Some(rate) = self.config.qos.rate_jobs_per_s {
                    let burst = self.config.qos.burst;
                    let bucket = buckets
                        .entry(job.tenant.clone())
                        .or_insert_with(|| TokenBucket::new(rate, burst));
                    if let Err(retry_after_s) = bucket.try_acquire(now) {
                        if attempt <= max_retries {
                            let mut job = job;
                            job.arrival_s += retry_after_s;
                            resubmissions += 1;
                            push_resubmission(&mut resubmit, job, attempt + 1);
                        } else {
                            rejected.push(Rejected {
                                job_id: job.id,
                                tenant: job.tenant.clone(),
                                reason: RejectReason::RateLimited { rate_jobs_per_s: rate },
                                retry_after_s,
                                arrival_s: now,
                            });
                        }
                        continue;
                    }
                }
                let est = estimate_service_s(
                    job.transfer_bytes(),
                    job.rank(),
                    self.pool.planning_device(),
                );
                let n_active = active.iter().filter(|a| **a).count().max(1);
                let residual: f64 = free_at
                    .iter()
                    .zip(&active)
                    .filter(|(_, a)| **a)
                    .map(|(&f, _)| if f.is_finite() { (f - now).max(0.0) } else { 0.0 })
                    .sum();
                let wait_est = (residual + queue.backlog_s()) / n_active as f64;
                let mean_queued =
                    if queue.is_empty() { est } else { queue.backlog_s() / queue.len() as f64 };
                let policy = match injector.as_deref_mut() {
                    Some(inj) => {
                        let healthy = (0..num_devices)
                            .filter(|&d| {
                                !matches!(inj.health_at(d, now), DeviceHealth::Down { .. })
                            })
                            .count();
                        self.config.admission.degraded(healthy, num_devices)
                    }
                    None => self.config.admission,
                };
                match policy.admit(queue.len(), wait_est, mean_queued) {
                    Ok(()) => {
                        let key =
                            FeatureKey::quantize(memo.features_of(&job), job.mode, job.rank());
                        queue.push(Pending { job, seq, est_s: est, attempt, key });
                        seq += 1;
                    }
                    Err((_reason, retry_after_s)) if attempt <= max_retries => {
                        let mut job = job;
                        job.arrival_s += retry_after_s;
                        resubmissions += 1;
                        push_resubmission(&mut resubmit, job, attempt + 1);
                    }
                    Err((reason, retry_after_s)) => rejected.push(Rejected {
                        job_id: job.id,
                        tenant: job.tenant.clone(),
                        reason,
                        retry_after_s,
                        arrival_s: job.arrival_s,
                    }),
                }
            } else {
                let lead = queue.pop().expect("dispatch branch implies non-empty queue");
                let lead_ready = dev_free.max(lead.job.arrival_s);
                if !lead_ready.is_finite() {
                    // Every active device is permanently down: drain the
                    // queue into final rejections rather than spinning.
                    rejected.push(Rejected {
                        job_id: lead.job.id,
                        tenant: lead.job.tenant.clone(),
                        reason: RejectReason::DeviceFailure { device: dev },
                        retry_after_s: f64::INFINITY,
                        arrival_s: lead.job.arrival_s,
                    });
                    continue;
                }
                let mut aborted = false;
                let mut spec = self.pool.devices()[dev].clone();
                if let Some(inj) = injector.as_deref_mut() {
                    match inj.on_op(dev, OpClass::Kernel, lead_ready) {
                        OpVerdict::DeviceDown { until_s } => {
                            // The group never formed: park the device until
                            // it heals and reroute the lead untouched.
                            free_at[dev] = until_s.unwrap_or(f64::INFINITY);
                            inj.record_recovery(
                                dev,
                                lead_ready,
                                RecoveryAction::Requeue { job: lead.job.id },
                            );
                            queue.push(lead);
                            continue;
                        }
                        OpVerdict::Aborted => aborted = true,
                        OpVerdict::Ok | OpVerdict::Corrupted => {}
                    }
                    if let DeviceHealth::Straggling { derate } = inj.health_at(dev, lead_ready) {
                        spec = spec.derated(derate);
                    }
                }
                // Group formation: drain the queue's compatible followers
                // behind the QoS pick, capped by `max_batch` — unless the
                // arm decision says this shape gains nothing from fusing,
                // or the hybrid CPU/GPU split (inherently per-job) is on.
                let solo_only = self.config.hybrid_threshold.is_some() && self.config.functional;
                let max_batch = self.config.max_batch.max(1);
                let fuse = !solo_only
                    && max_batch > 1
                    && prefer_batched(
                        lead.job.factors.byte_size(),
                        lead.job.tensor.byte_size(),
                        max_batch,
                    );
                let mut members = vec![lead];
                if fuse {
                    let extra = queue.drain_compatible(max_batch - 1, |p| {
                        BatchGroup::compatible(&members[0], p)
                    });
                    members.extend(extra);
                }
                let group = BatchGroup::new(members);
                let group_start = group.group_start(dev_free);
                let (records, group_finish) =
                    self.execute_group(&group, dev, &spec, dev_free, &mut cache, &mut memo);
                let failure = match injector.as_deref_mut() {
                    Some(inj) if !aborted => inj.fail_between(dev, group_start, group_finish),
                    _ => None,
                };
                if aborted || failure.is_some() {
                    // An abort charges the full (wasted) service time but
                    // leaves the device up; a mid-service device failure
                    // kills the whole group at the fault time and takes
                    // the device with it until it heals.
                    let (fail_s, free_again_s) = match failure {
                        Some((t, until_s)) => (t, until_s.unwrap_or(f64::INFINITY)),
                        None => (group_finish, group_finish),
                    };
                    free_at[dev] = free_again_s.max(fail_s);
                    for m in group.members {
                        if m.attempt <= max_retries {
                            if let Some(inj) = injector.as_deref_mut() {
                                inj.record_recovery(
                                    dev,
                                    fail_s,
                                    RecoveryAction::Requeue { job: m.job.id },
                                );
                            }
                            let mut job = m.job;
                            job.arrival_s = fail_s;
                            resubmissions += 1;
                            push_resubmission(&mut resubmit, job, m.attempt + 1);
                        } else {
                            rejected.push(Rejected {
                                job_id: m.job.id,
                                tenant: m.job.tenant.clone(),
                                reason: RejectReason::DeviceFailure { device: dev },
                                retry_after_s: (free_again_s - fail_s).max(1e-6),
                                arrival_s: fail_s,
                            });
                        }
                    }
                    continue;
                }
                for r in records {
                    if r.timing.check_consistency().is_err() {
                        timing_inconsistencies += 1;
                        first_inconsistent_job.get_or_insert(r.id);
                    }
                    completed.push(r);
                }
                dispatch_groups += 1;
                free_at[dev] = group_finish;
                if let Some(a) = autoscaler.as_mut() {
                    a.step(group_start, queue.len(), &mut active, &mut free_at);
                }
            }
        }

        let makespan_s = completed.iter().map(|r| r.finish_s).fold(0.0, f64::max);
        let (device_attaches, device_detaches) = match &autoscaler {
            Some(a) => (a.attaches(), a.detaches()),
            None => (0, 0),
        };
        let cache_snapshot = self.config.snapshot_cache.then(|| cache.snapshot());
        ServeReport {
            completed,
            rejected,
            cache: cache.stats(),
            makespan_s,
            peak_queue_depth: queue.peak_depth(),
            predictor_trainings: self.predictor.trainings(),
            resubmissions,
            dispatch_groups,
            device_attaches,
            device_detaches,
            timing_inconsistencies,
            first_inconsistent_job,
            cache_snapshot,
        }
    }

    /// Plans one shape class: cache lookup on the quantized feature key,
    /// falling back to the full planning path (predictor → segments/streams
    /// → hybrid decision) on a miss. One call covers a whole batch group —
    /// its members share the key by construction. Returns
    /// `(plan, cache_hit, plan_s)`.
    fn plan(
        &self,
        job: &MttkrpJob,
        cache: &mut PlanCache,
        memo: &mut PlannerMemo,
    ) -> (ExecutionPlan, bool, f64) {
        let key = FeatureKey::quantize(memo.features_of(job), job.mode, job.rank());
        if self.config.plan_caching {
            if let Some(plan) = cache.get(&key) {
                return (plan, true, PLAN_HIT_S);
            }
        } else {
            cache.count_bypass();
        }
        let config = if self.config.adaptive_launch {
            let features = memo.features_of(job).to_vec();
            self.predictor.for_rank(job.rank()).predict_from_features(&features)
        } else {
            LaunchConfig::parti_default(job.tensor.nnz())
        };
        let kernel =
            if self.config.tiled_kernel { KernelChoice::Tiled } else { KernelChoice::CooAtomic };
        let segments = segment::auto_segment_count(
            job.tensor.byte_size(),
            job.factors.byte_size(),
            self.pool.planning_device().global_mem_bytes as usize,
            MAX_SEGMENTS,
        )
        .clamp(4, MAX_SEGMENTS);
        let plan = ExecutionPlan {
            config,
            kernel,
            segments,
            streams: segments.min(4),
            hybrid_threshold: self.config.hybrid_threshold,
        };
        if self.config.plan_caching {
            cache.insert(key, plan);
        }
        (plan, false, PLAN_MISS_S)
    }

    /// Executes one batch group on pool device `dev`. `device` is the spec
    /// to simulate against — normally the pool's, but a straggling device
    /// passes a derated copy. Returns the per-member records plus the time
    /// the device frees.
    ///
    /// The group becomes **one** fused ScheduleIR plan
    /// ([`build_batched_plan`]): the shared factor set crosses PCIe once,
    /// then each member's tensor staging, kernel and output return run as
    /// independent `job{id}`-labelled spans cycling the worker streams.
    /// The fused plan goes through the `scalfrag-opt` default pipeline
    /// (bit-identical passes only) before interpretation, exactly like the
    /// registered `serve-batched` builder the conformance suite pins.
    ///
    /// Per-member phase accounting reads the interpreted trace back:
    /// `job{id}`-labelled spans bill that member; the remaining H2D time —
    /// the shared factor upload, plus whatever staging copy an optimizer
    /// pass folded into it — is split across members proportionally to
    /// their tensor payload bytes. A member's `total_s` is its own last
    /// span's end on the plan timeline, so per-engine bounds keep holding;
    /// planning time is charged once to the group and shown as an equal
    /// per-member share (`plan_s / size`), keeping `total_plan_s` an
    /// honest sum.
    fn execute_group(
        &self,
        group: &BatchGroup,
        dev: usize,
        device: &DeviceSpec,
        dev_free: f64,
        cache: &mut PlanCache,
        memo: &mut PlannerMemo,
    ) -> (Vec<JobRecord>, f64) {
        let lead = &group.lead().job;
        let (plan, cache_hit, plan_s) = self.plan(lead, cache, memo);
        // A cached plan may have been made against a bigger card; fall
        // back to the heuristic rather than launching an invalid config.
        let config = if plan.config.validate(device).is_ok() {
            plan.config
        } else {
            LaunchConfig::parti_default(lead.tensor.nnz())
        };
        let group_start = group.group_start(dev_free);

        if let (Some(threshold), true) = (plan.hybrid_threshold, self.config.functional) {
            // The hybrid CPU/GPU split stays a per-job path: the host-side
            // residue has no per-member stream labelling to unfuse. The
            // dispatch loop caps such groups at one member.
            assert_eq!(group.size(), 1, "hybrid dispatch is solo by construction");
            let m = &group.members[0];
            let mut gpu = Gpu::new(device.clone());
            let split = split_by_slice_population(&m.job.tensor, m.job.mode, threshold);
            let run = execute_hybrid(
                &mut gpu,
                &split,
                &m.job.factors,
                m.job.mode,
                config,
                plan.segments,
                plan.streams,
                plan.kernel,
                ExecMode::Functional,
            );
            let timing =
                PhaseTiming::from_timeline(&run.timeline).with_queue(group_start - m.job.arrival_s);
            let finish_s = group_start + plan_s + timing.total_s;
            let record = JobRecord {
                id: m.job.id,
                tenant: m.job.tenant.clone(),
                priority: m.job.priority,
                device: dev,
                arrival_s: m.job.arrival_s,
                start_s: group_start,
                finish_s,
                plan_s,
                cache_hit,
                timing,
                deadline_s: m.job.deadline_s,
                attempt: m.attempt,
                group_size: 1,
                output: Some(run.output),
            };
            return (vec![record], finish_s);
        }

        let specs: Vec<BatchedJobSpec> = group
            .members
            .iter()
            .map(|m| BatchedJobSpec { id: m.job.id, tensor: memo.sorted_of(&m.job) })
            .collect();
        let fused = build_batched_plan(
            device,
            &specs,
            Arc::clone(&lead.factors),
            lead.mode,
            config,
            plan.kernel,
            plan.streams,
        );
        let fused = scalfrag_opt::optimize_default(&fused);
        let exec = if self.config.functional { ExecMode::Functional } else { ExecMode::Dry };
        let outcome = run_plan(&fused, exec);

        let n = group.size();
        let id_to_idx: HashMap<u64, usize> =
            group.members.iter().enumerate().map(|(i, m)| (m.job.id, i)).collect();
        let mut h2d = vec![0.0f64; n];
        let mut kernel = vec![0.0f64; n];
        let mut d2h = vec![0.0f64; n];
        let mut ends = vec![0.0f64; n];
        let mut shared_h2d = 0.0f64;
        let mut makespan = 0.0f64;
        for e in &outcome.trace.events {
            makespan = makespan.max(e.end);
            let dur = e.end - e.start;
            match job_of_label(&e.label).and_then(|id| id_to_idx.get(&id)) {
                Some(&j) => {
                    match e.kind {
                        SpanKind::CopyH2D => h2d[j] += dur,
                        SpanKind::Kernel => kernel[j] += dur,
                        SpanKind::CopyD2H => d2h[j] += dur,
                        SpanKind::HostTask => {}
                    }
                    ends[j] = ends[j].max(e.end);
                }
                None => {
                    if e.kind == SpanKind::CopyH2D {
                        shared_h2d += dur;
                    }
                }
            }
        }

        let total_bytes = group.total_tensor_bytes() as f64;
        let plan_share = plan_s / n as f64;
        let mut records = Vec::with_capacity(n);
        for (j, m) in group.members.iter().enumerate() {
            let share = if total_bytes > 0.0 {
                m.job.tensor.byte_size() as f64 / total_bytes
            } else {
                1.0 / n as f64
            };
            let t_ready = group.t_ready(j, dev_free);
            let timing = PhaseTiming {
                h2d_s: h2d[j] + shared_h2d * share,
                kernel_s: kernel[j],
                d2h_s: d2h[j],
                host_s: 0.0,
                queue_s: (t_ready - m.job.arrival_s).max(0.0),
                batch_wait_s: group.batch_wait_s(j, dev_free),
                total_s: ends[j],
            };
            let output =
                if self.config.functional { outcome.shard_outputs.get(j).cloned() } else { None };
            records.push(JobRecord {
                id: m.job.id,
                tenant: m.job.tenant.clone(),
                priority: m.job.priority,
                device: dev,
                arrival_s: m.job.arrival_s,
                start_s: t_ready,
                finish_s: group_start + plan_s + ends[j],
                plan_s: plan_share,
                cache_hit,
                timing,
                deadline_s: m.job.deadline_s,
                attempt: m.attempt,
                group_size: n,
                output,
            });
        }
        (records, group_start + plan_s + makespan)
    }
}

/// Parses the member id out of a fused-plan op label — the `"job{id} …"`
/// labelling contract of [`build_batched_plan`]. Labels without the
/// prefix (the shared factor upload) return `None`.
fn job_of_label(label: &str) -> Option<u64> {
    let rest = label.strip_prefix("job")?;
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The serving layer's registered plan builders: the plan a default
/// functional server dispatches a job onto, with the predictor swapped
/// for the ParTI heuristic so building stays training-free and
/// deterministic. Mirrors the `path:serve-functional` conformance
/// backend.
pub fn plan_builders() -> Vec<PlanBuilder> {
    vec![PlanBuilder::new("serve-functional", |tensor, factors, mode| {
        let device = DeviceSpec::rtx3090();
        let config = LaunchConfig::parti_default(tensor.nnz());
        let segments = segment::auto_segment_count(
            tensor.byte_size(),
            factors.byte_size(),
            device.global_mem_bytes as usize,
            MAX_SEGMENTS,
        )
        .clamp(4, MAX_SEGMENTS);
        let mut sorted = tensor.clone();
        sorted.sort_for_mode(mode);
        let pplan = PipelinePlan::new(&sorted, mode, config, segments, segments.min(4));
        let mut p = build_pipelined_plan(&device, &sorted, factors, &pplan, KernelChoice::Tiled);
        p.name = "serve-functional";
        p
    })]
}

/// Inserts a resubmission keeping the list sorted descending by
/// (arrival, id, attempt), so `pop()` always yields the earliest event
/// deterministically.
fn push_resubmission(resubmit: &mut Vec<(MttkrpJob, u32)>, job: MttkrpJob, attempt: u32) {
    resubmit.push((job, attempt));
    resubmit.sort_by(|(a, aa), (b, ba)| {
        b.arrival_s
            .partial_cmp(&a.arrival_s)
            .expect("finite resubmission times")
            .then(b.id.cmp(&a.id))
            .then(ba.cmp(aa))
    });
}

/// Index and free-time of the earliest-free *active* device (lowest index
/// wins ties, deterministically). The active set never empties: with
/// autoscaling off it is the whole pool, and the autoscaler floors the
/// shrink at `min_devices ≥ 1`.
fn earliest_free_active(free_at: &[f64], active: &[bool]) -> (usize, f64) {
    let mut best: Option<usize> = None;
    for (i, (&t, &a)) in free_at.iter().zip(active).enumerate() {
        if a && best.is_none_or(|b| t < free_at[b]) {
            best = Some(i);
        }
    }
    let b = best.expect("the active device set never empties");
    (b, free_at[b])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_constructors() {
        let p = DevicePool::homogeneous(DeviceSpec::rtx3090(), 3);
        assert_eq!(p.num_devices(), 3);
        assert_eq!(p.planning_device().name, DeviceSpec::rtx3090().name);
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4);
        let p = DevicePool::from_node(&node);
        assert_eq!(p.num_devices(), 4);
        assert!(
            p.devices()[0].pcie_h2d_gbs < DeviceSpec::rtx3090().pcie_h2d_gbs,
            "shared-host contention must be folded in"
        );
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_rejected() {
        let _ = DevicePool::from_devices(Vec::new());
    }

    #[test]
    fn earliest_free_active_prefers_lowest_index_and_skips_inactive() {
        assert_eq!(earliest_free_active(&[1.0, 1.0, 0.5], &[true; 3]), (2, 0.5));
        assert_eq!(earliest_free_active(&[1.0, 1.0], &[true; 2]), (0, 1.0));
        assert_eq!(
            earliest_free_active(&[1.0, 0.5], &[true, false]),
            (0, 1.0),
            "a parked device must never win dispatch"
        );
    }

    #[test]
    fn job_labels_parse_back_to_member_ids() {
        assert_eq!(job_of_label("job17 H2D (600 nnz)"), Some(17));
        assert_eq!(job_of_label("job3 kernel"), Some(3));
        assert_eq!(job_of_label("job900 output D2H"), Some(900));
        assert_eq!(job_of_label("factors H2D"), None);
        assert_eq!(job_of_label("job H2D"), None, "no digits, no member");
    }

    mod batched {
        use crate::admission::AdmissionPolicy;
        use crate::autoscale::AutoscalePolicy;
        use crate::queue::QosConfig;
        use crate::scheduler::DevicePool;
        use crate::workload::{synthesize, WorkloadSpec};
        use crate::{RejectReason, ScalFragServer, ServerConfig};
        use scalfrag_gpusim::DeviceSpec;

        /// A near-simultaneous burst of one shape class: everything is
        /// batch-compatible and the queue backs up behind one device.
        fn burst_spec(jobs: usize) -> WorkloadSpec {
            WorkloadSpec {
                jobs,
                tenants: 2,
                shape_classes: 1,
                variants_per_class: 1,
                base_nnz: 3_000,
                mean_interarrival_s: 1e-6,
                ..Default::default()
            }
        }

        fn loose() -> AdmissionPolicy {
            AdmissionPolicy { max_queue_depth: 256, makespan_budget_s: 10.0 }
        }

        #[test]
        fn burst_of_compatible_jobs_fuses_into_groups() {
            let server =
                ScalFragServer::builder().admission(loose()).train_tiers(vec![3_000]).build();
            let report = server.run(synthesize(&burst_spec(16)));
            assert_eq!(report.completed.len(), 16);
            assert!(
                report.dispatch_groups < 16,
                "a same-class burst must fuse ({} groups for 16 jobs)",
                report.dispatch_groups
            );
            assert!(report.completed.iter().any(|r| r.group_size > 1));
            assert!(report.mean_batch_occupancy() > 1.0);
            // Window 0: every fused member was already queued when the
            // device freed, so nobody waits on the group forming.
            assert!(report.completed.iter().all(|r| r.timing.batch_wait_s == 0.0));
            for r in &report.completed {
                assert!(r.timing.check_consistency().is_ok(), "job {}: bad timing", r.id);
            }
        }

        #[test]
        fn batch_window_admits_late_members_and_charges_the_wait() {
            let config =
                ServerConfig { admission: loose(), batch_window_s: 2e-3, ..Default::default() };
            let server = ScalFragServer::builder().config(config).train_tiers(vec![3_000]).build();
            let spec = WorkloadSpec { mean_interarrival_s: 2e-4, ..burst_spec(16) };
            let report = server.run(synthesize(&spec));
            assert_eq!(report.completed.len(), 16);
            let waited: Vec<_> = report
                .completed
                .iter()
                .filter(|r| r.group_size > 1 && r.timing.batch_wait_s > 0.0)
                .collect();
            assert!(
                !waited.is_empty(),
                "a 2ms window must let late arrivals join and charge the early members"
            );
            for r in &report.completed {
                assert!(r.timing.check_consistency().is_ok(), "job {}: bad timing", r.id);
                assert!(
                    r.finish_s >= r.start_s + r.timing.batch_wait_s,
                    "job {}: the batch wait must be inside the service window",
                    r.id
                );
            }
        }

        /// Satellite regression: the shared factor upload is charged to
        /// the members in proportion to their tensor payloads. Member 0
        /// is excluded from the comparison — its own tensor upload sits
        /// next to the factors on worker stream 0, so `coalesce-h2d`
        /// folds it into the shared (proportionally split) pool; members
        /// 1+ keep their labelled uploads.
        #[test]
        fn shared_h2d_splits_proportionally_to_tensor_bytes() {
            use crate::job::MttkrpJob;
            use scalfrag_kernels::FactorSet;
            use scalfrag_tensor::CooTensor;
            use std::sync::Arc;

            let dims = [40u32, 30, 20];
            let factors = Arc::new(FactorSet::random(&dims, 8, 3));
            let job = |id: u64, t: &Arc<CooTensor>| {
                MttkrpJob::new(id, "acme", Arc::clone(t), Arc::clone(&factors), 0).at(0.0)
            };
            let serve_trio = |a: &Arc<CooTensor>, b: &Arc<CooTensor>, c: &Arc<CooTensor>| {
                let server =
                    ScalFragServer::builder().admission(loose()).train_tiers(vec![600]).build();
                let report = server.run(vec![job(0, a), job(1, b), job(2, c)]);
                assert_eq!(report.completed.len(), 3);
                assert!(
                    report.completed.iter().all(|r| r.group_size == 3),
                    "the simultaneous trio must fuse into one group"
                );
                let h2d =
                    |id: u64| report.completed.iter().find(|r| r.id == id).unwrap().timing.h2d_s;
                (h2d(1), h2d(2))
            };

            // Same tensor handle throughout: identical payloads, so the
            // shared upload splits exactly evenly. The durations are
            // differences of span times at different trace offsets, so
            // allow rounding in the last few bits.
            let t = Arc::new(CooTensor::random_uniform(&dims, 600, 1));
            let (ha, hb) = serve_trio(&t, &t, &t);
            assert!(
                (ha - hb).abs() <= 1e-9 * ha.max(hb),
                "equal payloads must split the shared upload evenly ({ha:.9e} vs {hb:.9e})"
            );

            // 600 vs 660 nnz (seed 1 lands both in one quarter-octave
            // bucket, so the trio still fuses): the 10 % bigger payload
            // must carry the strictly bigger H2D charge — its own upload
            // AND its share of the factors both scale with bytes.
            let big = Arc::new(CooTensor::random_uniform(&dims, 660, 1));
            let (hs, hbig) = serve_trio(&t, &t, &big);
            assert!(
                hbig > hs,
                "the bigger member must be charged more H2D ({hbig:.3e} vs {hs:.3e})"
            );
        }

        #[test]
        fn max_batch_one_disables_fusion() {
            let config = ServerConfig { admission: loose(), max_batch: 1, ..Default::default() };
            let server = ScalFragServer::builder().config(config).train_tiers(vec![3_000]).build();
            let report = server.run(synthesize(&burst_spec(12)));
            assert_eq!(report.completed.len(), 12);
            assert_eq!(report.dispatch_groups, 12, "max_batch=1 must dispatch solo groups");
            assert!(report.completed.iter().all(|r| r.group_size == 1));
        }

        #[test]
        fn batched_outputs_are_bit_identical_to_solo() {
            let run = |max_batch: usize| {
                let config = ServerConfig {
                    admission: loose(),
                    functional: true,
                    max_batch,
                    ..Default::default()
                };
                ScalFragServer::builder()
                    .config(config)
                    .train_tiers(vec![3_000])
                    .build()
                    .run(synthesize(&burst_spec(8)))
            };
            let solo = run(1);
            let fused = run(8);
            assert!(
                fused.completed.iter().any(|r| r.group_size > 1),
                "the fused run must actually batch"
            );
            for f in &fused.completed {
                let s = solo
                    .completed
                    .iter()
                    .find(|r| r.id == f.id)
                    .expect("both runs complete every job");
                let (fo, so) = (f.output.as_ref().unwrap(), s.output.as_ref().unwrap());
                assert_eq!(
                    fo.as_slice(),
                    so.as_slice(),
                    "job {}: fused output must be bit-identical to solo",
                    f.id
                );
            }
        }

        #[test]
        fn rate_limited_tenants_get_typed_rejections() {
            let config = ServerConfig {
                admission: loose(),
                qos: QosConfig {
                    rate_jobs_per_s: Some(10.0),
                    burst: 2.0,
                    tenant_weights: Vec::new(),
                },
                ..Default::default()
            };
            let server = ScalFragServer::builder().config(config).train_tiers(vec![3_000]).build();
            let report = server.run(synthesize(&burst_spec(20)));
            assert!(
                report.rate_limited_rejections() > 0,
                "a burst far past 10 jobs/s must trip the bucket"
            );
            assert!(report
                .rejected
                .iter()
                .any(|r| matches!(r.reason, RejectReason::RateLimited { rate_jobs_per_s } if rate_jobs_per_s == 10.0)));
            assert_eq!(report.completed.len() + report.rejected.len(), 20);
        }

        #[test]
        fn autoscaler_attaches_under_sustained_pressure() {
            let config = ServerConfig {
                admission: loose(),
                autoscale: Some(AutoscalePolicy {
                    min_devices: 1,
                    high_watermark: 4,
                    low_watermark: 1,
                    sustain_s: 1e-6,
                    attach_delay_s: 1e-4,
                }),
                ..Default::default()
            };
            let server = ScalFragServer::builder()
                .pool(DevicePool::homogeneous(DeviceSpec::rtx3090(), 2))
                .config(config)
                .train_tiers(vec![3_000])
                .build();
            let report = server.run(synthesize(&burst_spec(32)));
            assert_eq!(report.completed.len(), 32);
            assert!(report.device_attaches >= 1, "sustained backlog must grow the pool");
            assert!(
                report.completed.iter().any(|r| r.device == 1),
                "the attached device must take work"
            );
        }
    }

    mod faulted {
        use crate::admission::AdmissionPolicy;
        use crate::scheduler::DevicePool;
        use crate::workload::{synthesize, WorkloadSpec};
        use crate::{MttkrpJob, ScalFragServer};
        use scalfrag_faults::{FaultInjector, FaultKind, FaultPlan, FaultTrigger};
        use scalfrag_gpusim::DeviceSpec;

        fn jobs(n: usize) -> Vec<MttkrpJob> {
            synthesize(&WorkloadSpec {
                jobs: n,
                shape_classes: 2,
                variants_per_class: 1,
                base_nnz: 3_000,
                ..Default::default()
            })
        }

        fn server(devices: usize, max_retries: u32) -> ScalFragServer {
            ScalFragServer::builder()
                .pool(DevicePool::homogeneous(DeviceSpec::rtx3090(), devices))
                .admission(AdmissionPolicy { max_queue_depth: 64, makespan_budget_s: 10.0 })
                .train_tiers(vec![3_000])
                .max_retries(max_retries)
                .build()
        }

        #[test]
        fn permanent_device_failure_reroutes_onto_the_survivor() {
            let plan = FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(1e-3),
                FaultKind::DeviceFail { down_s: None },
            );
            let mut inj = FaultInjector::new(plan);
            let report = server(2, 2).run_with_faults(jobs(8), &mut inj);
            assert_eq!(report.completed.len(), 8, "retries must rescue every job");
            assert!(report.rejected.is_empty());
            for r in &report.completed {
                assert!(
                    r.device != 0 || r.finish_s < 1e-3,
                    "job {} finished on the dead device after the failure",
                    r.id
                );
            }
            assert_eq!(inj.log().injected(), 1);
        }

        #[test]
        fn rejection_retries_honour_the_backoff_hint() {
            let tight = AdmissionPolicy { max_queue_depth: 64, makespan_budget_s: 2e-4 };
            // A near-simultaneous burst: the backlog budget must reject
            // part of it, and retries pick the rejects up once it drains.
            let burst = || {
                synthesize(&WorkloadSpec {
                    jobs: 12,
                    shape_classes: 2,
                    variants_per_class: 1,
                    base_nnz: 3_000,
                    mean_interarrival_s: 2e-5,
                    ..Default::default()
                })
            };
            let base = ScalFragServer::builder().admission(tight).train_tiers(vec![3_000]).build();
            let no_retry = base.run(burst());
            let retry_server = ScalFragServer::builder()
                .admission(tight)
                .train_tiers(vec![3_000])
                .max_retries(3)
                .predictor(base.trained_predictor().clone())
                .build();
            let with_retry = retry_server.run(burst());
            assert!(!no_retry.rejected.is_empty(), "the tight budget must actually bite");
            assert_eq!(no_retry.resubmissions, 0, "max_retries=0 keeps rejections final");
            assert!(with_retry.resubmissions > 0, "retries must resubmit rejected jobs");
            assert_eq!(
                with_retry.completed.len() + with_retry.rejected.len(),
                12,
                "every job terminates exactly once"
            );
            assert!(
                with_retry.completed.len() > no_retry.completed.len(),
                "resubmitting after the backoff hint must rescue jobs ({} vs {})",
                with_retry.completed.len(),
                no_retry.completed.len()
            );
            assert!(with_retry.completed.iter().any(|r| r.attempt > 1));
        }

        #[test]
        fn straggler_stretches_the_makespan_but_serves_everything() {
            let healthy = server(1, 0).run(jobs(6));
            let mut inj = FaultInjector::new(FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(0.0),
                FaultKind::Straggler { derate: 3.0 },
            ));
            let slow = server(1, 0).run_with_faults(jobs(6), &mut inj);
            assert_eq!(slow.completed.len(), healthy.completed.len());
            assert!(
                slow.makespan_s > healthy.makespan_s,
                "a 3x straggler must stretch the makespan ({} vs {})",
                slow.makespan_s,
                healthy.makespan_s
            );
        }

        #[test]
        fn all_devices_dead_drains_into_device_failure_rejections() {
            let mut inj = FaultInjector::new(FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(0.0),
                FaultKind::DeviceFail { down_s: None },
            ));
            let report = server(1, 1).run_with_faults(jobs(5), &mut inj);
            assert!(report.completed.is_empty(), "a dead pool completes nothing");
            assert!(report.device_failure_rejections() >= 1);
            assert_eq!(report.completed.len() + report.rejected.len(), 5);
        }

        #[test]
        fn faulted_serving_is_bit_reproducible() {
            let plan = || {
                FaultPlan::new()
                    .fault(
                        0,
                        FaultTrigger::AtTime(8e-4),
                        FaultKind::DeviceFail { down_s: Some(2e-3) },
                    )
                    .fault(1, FaultTrigger::AtTime(0.0), FaultKind::Straggler { derate: 1.5 })
            };
            let mut a = FaultInjector::new(plan());
            let mut b = FaultInjector::new(plan());
            let ra = server(2, 2).run_with_faults(jobs(8), &mut a);
            let rb = server(2, 2).run_with_faults(jobs(8), &mut b);
            assert_eq!(ra.fingerprint(), rb.fingerprint(), "serve fingerprints must match");
            assert_eq!(
                a.log().fingerprint(),
                b.log().fingerprint(),
                "fault logs must be identical run to run"
            );
        }

        #[test]
        fn transient_outage_parks_the_device_until_it_heals() {
            let mut inj = FaultInjector::new(FaultPlan::new().fault(
                0,
                FaultTrigger::AtTime(5e-4),
                FaultKind::DeviceFail { down_s: Some(3e-3) },
            ));
            let report = server(1, 3).run_with_faults(jobs(6), &mut inj);
            assert_eq!(report.completed.len(), 6, "a transient outage must not lose jobs");
            assert!(
                report.makespan_s >= 5e-4 + 3e-3,
                "the makespan must cover the outage window, got {}",
                report.makespan_s
            );
            assert!(inj.log().recoveries() >= 1, "the requeue must be logged");
        }
    }
}
