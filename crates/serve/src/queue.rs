//! Per-tenant QoS queueing: token-bucket rate limits, weighted fair
//! queueing across tenants, and SLO-aware EDF within a tenant.
//!
//! This replaces the original priority → round-robin → EDF chain with a
//! hierarchy a production serving tier would run:
//!
//! 1. **Token bucket** ([`TokenBucket`], applied at admission) — each
//!    tenant refills at a configured rate and may burst up to the bucket
//!    capacity; a dry bucket rejects with
//!    [`crate::RejectReason::RateLimited`] and a refill-time retry hint.
//! 2. **Weighted fair queueing** — the dispatcher picks the tenant with
//!    the smallest virtual start tag (start-time fair queueing over the
//!    admission-time service estimates), so a tenant's long-run share of
//!    device time tracks its configured weight regardless of how fast it
//!    submits.
//! 3. **SLO-aware EDF** — within the chosen tenant, the job whose SLO
//!    target expires first dispatches first. The target is the job's
//!    explicit deadline when it has one, otherwise `arrival +
//!    priority-class SLO budget` ([`HIGH_SLO_S`] / [`NORMAL_SLO_S`] /
//!    [`LOW_SLO_S`]) — priority thus *derives* urgency instead of
//!    preempting fairness outright.
//!
//! Everything is deterministic: virtual-time ties break on tenant name,
//! EDF ties on admission sequence.

use crate::job::{MttkrpJob, Priority};
use scalfrag_tensor::FeatureKey;
use std::collections::{BTreeMap, VecDeque};

/// SLO budget (s) a deadline-less `High` job is held to.
pub const HIGH_SLO_S: f64 = 5e-3;
/// SLO budget (s) a deadline-less `Normal` job is held to.
pub const NORMAL_SLO_S: f64 = 5e-2;
/// SLO budget (s) a deadline-less `Low` job is held to.
pub const LOW_SLO_S: f64 = 5e-1;

/// The absolute time (s) a job's SLO expires: its deadline if explicit,
/// otherwise arrival plus the priority-class budget.
pub fn slo_target_s(job: &MttkrpJob) -> f64 {
    let budget = match job.priority {
        Priority::High => HIGH_SLO_S,
        Priority::Normal => NORMAL_SLO_S,
        Priority::Low => LOW_SLO_S,
    };
    job.deadline_s.unwrap_or(job.arrival_s + budget)
}

/// A queued job plus its bookkeeping.
#[derive(Clone)]
pub struct Pending {
    /// The job itself.
    pub job: MttkrpJob,
    /// Admission sequence number (global FIFO tie-breaker).
    pub seq: u64,
    /// Admission-time service estimate (s) — drives the backlog account
    /// and the WFQ virtual clock.
    pub est_s: f64,
    /// 1-based submission attempt: 1 on first arrival, bumped each time a
    /// rejection or device failure sends the job back through admission.
    pub attempt: u32,
    /// The quantized planning/batching key, computed once at admission —
    /// group formation compares these instead of re-extracting features.
    pub key: FeatureKey,
}

/// Per-tenant token bucket: `rate` tokens/s refill up to `burst`
/// capacity; each admission takes one token.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` jobs/s with `burst` capacity.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst >= 1.0, "token bucket needs rate > 0 and burst >= 1");
        Self { rate, burst, tokens: burst, last_s: 0.0 }
    }

    /// Takes one token at simulated time `now`, or returns the time (s)
    /// until the next token materialises.
    pub fn try_acquire(&mut self, now: f64) -> Result<(), f64> {
        self.tokens = (self.tokens + (now - self.last_s).max(0.0) * self.rate).min(self.burst);
        self.last_s = self.last_s.max(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((1.0 - self.tokens) / self.rate)
        }
    }
}

/// Per-tenant QoS configuration of a server.
#[derive(Clone, Debug)]
pub struct QosConfig {
    /// `Some(rate)` = cap every tenant at `rate` admitted jobs/s
    /// (token-bucket, [`QosConfig::burst`] deep). `None` = no rate limit.
    pub rate_jobs_per_s: Option<f64>,
    /// Token-bucket depth (jobs) — how far a tenant may burst past its
    /// sustained rate.
    pub burst: f64,
    /// WFQ weights per tenant; unlisted tenants weigh 1.0. A weight-2
    /// tenant receives twice the device share of a weight-1 tenant under
    /// contention.
    pub tenant_weights: Vec<(String, f64)>,
}

impl Default for QosConfig {
    fn default() -> Self {
        Self { rate_jobs_per_s: None, burst: 8.0, tenant_weights: Vec::new() }
    }
}

/// The multi-tenant QoS queue: WFQ across tenants, SLO-aware EDF within.
#[derive(Default)]
pub struct QosQueues {
    /// Per-tenant FIFO of pending jobs (BTreeMap for deterministic
    /// iteration order).
    queues: BTreeMap<String, VecDeque<Pending>>,
    /// Per-tenant virtual finish tag of the last service charged to it.
    finish_vt: BTreeMap<String, f64>,
    /// Per-tenant WFQ weight (absent = 1.0).
    weights: BTreeMap<String, f64>,
    /// Global virtual clock: the start tag of the last dispatch.
    vtime: f64,
    len: usize,
    peak_depth: usize,
    backlog_s: f64,
}

impl QosQueues {
    /// An empty queue set with uniform weights.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue set with explicit WFQ weights (unlisted tenants
    /// weigh 1.0; non-positive weights are rejected).
    pub fn with_weights(weights: &[(String, f64)]) -> Self {
        let mut q = Self::default();
        for (tenant, w) in weights {
            assert!(*w > 0.0, "WFQ weight for {tenant} must be positive");
            q.weights.insert(tenant.clone(), *w);
        }
        q
    }

    /// Total queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest queue depth ever observed.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Sum of the service estimates of all queued jobs (s).
    pub fn backlog_s(&self) -> f64 {
        self.backlog_s
    }

    fn weight(&self, tenant: &str) -> f64 {
        self.weights.get(tenant).copied().unwrap_or(1.0)
    }

    /// The tenant's WFQ start tag if it dispatched next.
    fn start_tag(&self, tenant: &str) -> f64 {
        self.vtime.max(self.finish_vt.get(tenant).copied().unwrap_or(0.0))
    }

    /// Advances the tenant's virtual finish tag by one service of
    /// `est_s`, scaled by its weight.
    fn charge(&mut self, tenant: &str, est_s: f64) {
        let start = self.start_tag(tenant);
        let finish = start + est_s / self.weight(tenant);
        self.finish_vt.insert(tenant.to_string(), finish);
    }

    /// Enqueues an admitted job under its tenant.
    pub fn push(&mut self, pending: Pending) {
        let tenant = pending.job.tenant.clone();
        self.backlog_s += pending.est_s;
        self.len += 1;
        self.peak_depth = self.peak_depth.max(self.len);
        self.queues.entry(tenant).or_default().push_back(pending);
    }

    fn remove_at(&mut self, tenant: &str, idx: usize) -> Pending {
        let q = self.queues.get_mut(tenant).expect("tenant has a queue");
        let pending = q.remove(idx).expect("index in range");
        if q.is_empty() {
            self.queues.remove(tenant);
        }
        self.len -= 1;
        self.backlog_s = (self.backlog_s - pending.est_s).max(0.0);
        pending
    }

    /// Dequeues the next job per the WFQ → SLO-EDF rule and charges its
    /// service to the tenant's virtual clock.
    pub fn pop(&mut self) -> Option<Pending> {
        if self.len == 0 {
            return None;
        }
        // 1. WFQ: the tenant with the smallest start tag (name-ordered
        //    iteration makes ties deterministic).
        let tenant = self
            .queues
            .keys()
            .min_by(|a, b| {
                self.start_tag(a)
                    .partial_cmp(&self.start_tag(b))
                    .expect("finite virtual time")
                    .then(a.cmp(b))
            })
            .expect("non-empty queues")
            .clone();
        // 2. SLO-EDF within the tenant: earliest SLO target, then FIFO.
        let q = &self.queues[&tenant];
        let best_idx = q
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                slo_target_s(&a.job)
                    .partial_cmp(&slo_target_s(&b.job))
                    .expect("finite SLO targets")
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
            .expect("tenant queue is non-empty");
        self.vtime = self.start_tag(&tenant);
        let pending = self.remove_at(&tenant, best_idx);
        self.charge(&tenant, pending.est_s);
        Some(pending)
    }

    /// Removes up to `max` queued jobs matching `pred`, in admission
    /// order, charging each to its tenant's virtual clock (a batched
    /// member consumes device time exactly like a solo dispatch would).
    /// Used by batch-group formation after [`QosQueues::pop`] picks the
    /// lead.
    pub fn drain_compatible<F>(&mut self, max: usize, mut pred: F) -> Vec<Pending>
    where
        F: FnMut(&Pending) -> bool,
    {
        if max == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut picks: Vec<(u64, String)> = Vec::new();
        for (tenant, q) in &self.queues {
            for p in q {
                if pred(p) {
                    picks.push((p.seq, tenant.clone()));
                }
            }
        }
        picks.sort();
        picks.truncate(max);
        let mut drained = Vec::with_capacity(picks.len());
        for (seq, tenant) in picks {
            let idx = self.queues[&tenant]
                .iter()
                .position(|p| p.seq == seq)
                .expect("picked job still queued");
            let pending = self.remove_at(&tenant, idx);
            self.charge(&tenant, pending.est_s);
            drained.push(pending);
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use scalfrag_kernels::FactorSet;
    use scalfrag_tensor::CooTensor;
    use std::sync::Arc;

    fn job(id: u64, tenant: &str, priority: Priority, deadline: Option<f64>) -> Pending {
        job_est(id, tenant, priority, deadline, 1.0)
    }

    fn job_est(
        id: u64,
        tenant: &str,
        priority: Priority,
        deadline: Option<f64>,
        est_s: f64,
    ) -> Pending {
        let t = Arc::new(CooTensor::random_uniform(&[10, 10, 10], 50, id));
        let f = Arc::new(FactorSet::random(&[10, 10, 10], 4, id));
        let mut j = MttkrpJob::new(id, tenant, t, f, 0).with_priority(priority);
        if let Some(d) = deadline {
            j = j.with_deadline(d);
        }
        let key = FeatureKey::of(&j.tensor, 0, 4);
        Pending { job: j, seq: id, est_s, attempt: 1, key }
    }

    #[test]
    fn slo_targets_derive_from_priority_or_deadline() {
        let high = job(0, "a", Priority::High, None);
        let normal = job(1, "a", Priority::Normal, None);
        let low = job(2, "a", Priority::Low, None);
        assert!(slo_target_s(&high.job) < slo_target_s(&normal.job));
        assert!(slo_target_s(&normal.job) < slo_target_s(&low.job));
        let dl = job(3, "a", Priority::Low, Some(1e-4));
        assert_eq!(slo_target_s(&dl.job), 1e-4, "an explicit deadline wins");
    }

    #[test]
    fn slo_edf_orders_within_a_tenant() {
        let mut q = QosQueues::new();
        q.push(job(0, "a", Priority::Low, None));
        q.push(job(1, "a", Priority::High, None));
        q.push(job(2, "a", Priority::Normal, Some(1e-3)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.job.id).collect();
        // Deadline 1 ms < High SLO (5 ms) < Low SLO (500 ms).
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn fair_queueing_alternates_equal_weight_tenants() {
        let mut q = QosQueues::new();
        for id in 0..3 {
            q.push(job(id, "a", Priority::Normal, None));
        }
        for id in 3..5 {
            q.push(job(id, "b", Priority::Normal, None));
        }
        let order: Vec<String> =
            std::iter::from_fn(|| q.pop()).map(|p| p.job.tenant.clone()).collect();
        assert_eq!(order, vec!["a", "b", "a", "b", "a"]);
    }

    #[test]
    fn wfq_weights_shift_the_share() {
        // Tenant a has weight 3: over the first 4 dispatches it should
        // receive 3 slots to b's 1.
        let mut q = QosQueues::with_weights(&[("a".into(), 3.0)]);
        for id in 0..6 {
            q.push(job(id, "a", Priority::Normal, None));
        }
        for id in 6..12 {
            q.push(job(id, "b", Priority::Normal, None));
        }
        let first4: Vec<String> = (0..4).map(|_| q.pop().unwrap().job.tenant.clone()).collect();
        let a_count = first4.iter().filter(|t| *t == "a").count();
        assert_eq!(a_count, 3, "weight-3 tenant gets 3 of the first 4 slots: {first4:?}");
    }

    #[test]
    fn drain_compatible_takes_matching_jobs_in_admission_order() {
        let mut q = QosQueues::new();
        q.push(job(0, "b", Priority::Normal, None));
        q.push(job(1, "a", Priority::Normal, None));
        q.push(job(2, "b", Priority::Low, None));
        q.push(job(3, "a", Priority::Normal, None));
        let drained = q.drain_compatible(2, |p| p.job.priority == Priority::Normal);
        let ids: Vec<u64> = drained.iter().map(|p| p.job.id).collect();
        assert_eq!(ids, vec![0, 1], "admission (seq) order across tenants, capped at max");
        assert_eq!(q.len(), 2);
        assert!(q.drain_compatible(0, |_| true).is_empty());
    }

    #[test]
    fn drained_members_are_charged_like_dispatches() {
        // Tenant a gets 3 jobs batched away in one drain; tenant b then
        // deserves the next dispatches until the shares even out.
        let mut q = QosQueues::new();
        for id in 0..4 {
            q.push(job(id, "a", Priority::Normal, None));
        }
        for id in 4..6 {
            q.push(job(id, "b", Priority::Normal, None));
        }
        let lead = q.pop().unwrap();
        assert_eq!(lead.job.tenant, "a");
        let drained = q.drain_compatible(2, |p| p.job.tenant == "a");
        assert_eq!(drained.len(), 2);
        assert_eq!(
            q.pop().unwrap().job.tenant,
            "b",
            "after 3 charged services, tenant a must yield"
        );
        assert_eq!(q.pop().unwrap().job.tenant, "b");
        assert_eq!(q.pop().unwrap().job.tenant, "a");
    }

    #[test]
    fn token_bucket_limits_and_refills() {
        let mut b = TokenBucket::new(10.0, 2.0);
        assert!(b.try_acquire(0.0).is_ok());
        assert!(b.try_acquire(0.0).is_ok(), "burst of 2 admits 2 at once");
        let wait = b.try_acquire(0.0).unwrap_err();
        assert!((wait - 0.1).abs() < 1e-12, "next token is 1/rate away, got {wait}");
        assert!(b.try_acquire(0.1).is_ok(), "refilled after the hint");
        // Long idle refills to burst, never beyond.
        assert!(b.try_acquire(10.0).is_ok());
        assert!(b.try_acquire(10.0).is_ok());
        assert!(b.try_acquire(10.0).is_err(), "capacity caps the burst at 2");
    }

    #[test]
    fn bookkeeping_tracks_depth_and_backlog() {
        let mut q = QosQueues::new();
        assert!(q.is_empty());
        q.push(job(0, "a", Priority::Normal, None));
        q.push(job(1, "b", Priority::Normal, None));
        assert_eq!(q.len(), 2);
        assert_eq!(q.backlog_s(), 2.0);
        let _ = q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.backlog_s(), 1.0);
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.backlog_s(), 0.0);
        assert_eq!(q.peak_depth(), 2);
        assert!(q.pop().is_none());
    }
}
