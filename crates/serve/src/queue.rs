//! Per-tenant job queues with priority + EDF ordering and round-robin
//! fairness.
//!
//! The dispatch rule, in order:
//!
//! 1. **Priority** — the best (lowest) class present anywhere wins.
//! 2. **Tenant fairness** — among tenants holding a job of that class, the
//!    one least recently served dispatches next (round-robin over a rotor
//!    of active tenants).
//! 3. **EDF** — within the chosen tenant and class, the earliest deadline
//!    dispatches first; deadline-less jobs rank last, FIFO among
//!    themselves.
//!
//! Everything is deterministic: ties break on submission sequence.

use crate::job::MttkrpJob;
use std::collections::{BTreeMap, VecDeque};

/// A queued job plus its bookkeeping.
#[derive(Clone)]
pub struct Pending {
    /// The job itself.
    pub job: MttkrpJob,
    /// Admission sequence number (global FIFO tie-breaker).
    pub seq: u64,
    /// Admission-time service estimate (s) — drives the backlog account.
    pub est_s: f64,
    /// 1-based submission attempt: 1 on first arrival, bumped each time a
    /// rejection or device failure sends the job back through admission.
    pub attempt: u32,
}

/// The multi-tenant queue structure.
#[derive(Default)]
pub struct TenantQueues {
    /// Per-tenant FIFO of pending jobs (BTreeMap for deterministic
    /// iteration order).
    queues: BTreeMap<String, VecDeque<Pending>>,
    /// Round-robin rotor over tenants that currently have pending jobs;
    /// front = next to serve.
    rotor: VecDeque<String>,
    len: usize,
    peak_depth: usize,
    backlog_s: f64,
}

impl TenantQueues {
    /// An empty queue set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest queue depth ever observed.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Sum of the service estimates of all queued jobs (s).
    pub fn backlog_s(&self) -> f64 {
        self.backlog_s
    }

    /// Enqueues an admitted job under its tenant.
    pub fn push(&mut self, pending: Pending) {
        let tenant = pending.job.tenant.clone();
        self.backlog_s += pending.est_s;
        self.len += 1;
        self.peak_depth = self.peak_depth.max(self.len);
        let q = self.queues.entry(tenant.clone()).or_default();
        if q.is_empty() {
            self.rotor.push_back(tenant);
        }
        q.push_back(pending);
    }

    /// Dequeues the next job per the priority → fairness → EDF rule.
    pub fn pop(&mut self) -> Option<Pending> {
        if self.len == 0 {
            return None;
        }
        // 1. Best priority class present anywhere.
        let best_class = self
            .queues
            .values()
            .flat_map(|q| q.iter().map(|p| p.job.priority.class()))
            .min()
            .expect("non-empty queues");
        // 2. First tenant in rotor order holding that class.
        let rotor_pos = self
            .rotor
            .iter()
            .position(|t| self.queues[t].iter().any(|p| p.job.priority.class() == best_class))
            .expect("some tenant holds the best class");
        let tenant = self.rotor.remove(rotor_pos).expect("position in range");
        // 3. EDF within (tenant, class): earliest deadline, then FIFO.
        let q = self.queues.get_mut(&tenant).expect("rotor tenant has a queue");
        let best_idx = q
            .iter()
            .enumerate()
            .filter(|(_, p)| p.job.priority.class() == best_class)
            .min_by(|(_, a), (_, b)| {
                let da = a.job.deadline_s.unwrap_or(f64::INFINITY);
                let db = b.job.deadline_s.unwrap_or(f64::INFINITY);
                da.partial_cmp(&db).unwrap().then(a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
            .expect("tenant holds the best class");
        let pending = q.remove(best_idx).expect("index in range");
        if q.is_empty() {
            self.queues.remove(&tenant);
        } else {
            // Served tenants go to the back of the rotor.
            self.rotor.push_back(tenant);
        }
        self.len -= 1;
        self.backlog_s = (self.backlog_s - pending.est_s).max(0.0);
        Some(pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use scalfrag_kernels::FactorSet;
    use scalfrag_tensor::CooTensor;
    use std::sync::Arc;

    fn job(id: u64, tenant: &str, priority: Priority, deadline: Option<f64>) -> Pending {
        let t = Arc::new(CooTensor::random_uniform(&[10, 10, 10], 50, id));
        let f = Arc::new(FactorSet::random(&[10, 10, 10], 4, id));
        let mut j = MttkrpJob::new(id, tenant, t, f, 0).with_priority(priority);
        if let Some(d) = deadline {
            j = j.with_deadline(d);
        }
        Pending { job: j, seq: id, est_s: 1.0, attempt: 1 }
    }

    #[test]
    fn priority_beats_fifo() {
        let mut q = TenantQueues::new();
        q.push(job(0, "a", Priority::Low, None));
        q.push(job(1, "a", Priority::High, None));
        q.push(job(2, "a", Priority::Normal, None));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.job.id).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn edf_orders_within_class_and_deadline_less_jobs_rank_last() {
        let mut q = TenantQueues::new();
        q.push(job(0, "a", Priority::Normal, None));
        q.push(job(1, "a", Priority::Normal, Some(9.0)));
        q.push(job(2, "a", Priority::Normal, Some(3.0)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.job.id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn round_robin_across_tenants() {
        let mut q = TenantQueues::new();
        for id in 0..3 {
            q.push(job(id, "a", Priority::Normal, None));
        }
        for id in 3..5 {
            q.push(job(id, "b", Priority::Normal, None));
        }
        let order: Vec<String> =
            std::iter::from_fn(|| q.pop()).map(|p| p.job.tenant.clone()).collect();
        // a and b alternate while both have work; a finishes its backlog after.
        assert_eq!(order, vec!["a", "b", "a", "b", "a"]);
    }

    #[test]
    fn high_priority_jumps_the_rotor() {
        let mut q = TenantQueues::new();
        q.push(job(0, "a", Priority::Normal, None));
        q.push(job(1, "b", Priority::Normal, None));
        q.push(job(2, "c", Priority::High, None));
        assert_eq!(q.pop().unwrap().job.id, 2, "High dispatches before earlier Normals");
    }

    #[test]
    fn bookkeeping_tracks_depth_and_backlog() {
        let mut q = TenantQueues::new();
        assert!(q.is_empty());
        q.push(job(0, "a", Priority::Normal, None));
        q.push(job(1, "b", Priority::Normal, None));
        assert_eq!(q.len(), 2);
        assert_eq!(q.backlog_s(), 2.0);
        let _ = q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.backlog_s(), 1.0);
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.backlog_s(), 0.0);
        assert_eq!(q.peak_depth(), 2);
        assert!(q.pop().is_none());
    }
}
