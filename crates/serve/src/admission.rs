//! Admission control: bounded queue depth plus an estimated-makespan
//! budget, with typed rejections instead of panics or unbounded queues.
//!
//! Overload behaviour is the point: when the offered load exceeds the
//! device pool's capacity, the queue must not grow without bound and the
//! latency of *admitted* jobs must stay near the configured budget. Both
//! follow from rejecting at the door — a job is admitted only if (a) a
//! queue slot is free and (b) its estimated wait fits the budget.

use crate::job::JobId;
use scalfrag_gpusim::DeviceSpec;

/// Admission thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Hard cap on total queued jobs (across all tenants).
    pub max_queue_depth: usize,
    /// Maximum tolerated *estimated* wait (s) for a newly admitted job:
    /// residual work in flight plus queued backlog, divided over the pool.
    pub makespan_budget_s: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self { max_queue_depth: 64, makespan_budget_s: 0.05 }
    }
}

impl AdmissionPolicy {
    /// Decides whether a job with estimated wait `wait_est_s` may join a
    /// queue currently `depth` deep. On rejection returns the typed reason
    /// plus a retry hint (s) — roughly when the gate should open again.
    pub fn admit(
        &self,
        depth: usize,
        wait_est_s: f64,
        mean_queued_est_s: f64,
    ) -> Result<(), (RejectReason, f64)> {
        if depth >= self.max_queue_depth {
            // One slot opens once one queued job drains somewhere in the
            // pool — about one mean service time away.
            let retry = mean_queued_est_s.max(1e-6);
            return Err((RejectReason::QueueFull { depth, limit: self.max_queue_depth }, retry));
        }
        if wait_est_s > self.makespan_budget_s {
            let retry = (wait_est_s - self.makespan_budget_s).max(1e-6);
            return Err((
                RejectReason::BacklogExceeded { wait_est_s, budget_s: self.makespan_budget_s },
                retry,
            ));
        }
        Ok(())
    }

    /// The policy this gate degrades to when only `healthy` of `total`
    /// devices accept work: the makespan budget shrinks proportionally, so
    /// a half-dead pool admits roughly half the backlog it would healthy.
    /// With every device up (or a trivial pool) the policy is unchanged.
    pub fn degraded(&self, healthy: usize, total: usize) -> Self {
        if healthy >= total || total == 0 {
            return *self;
        }
        Self {
            max_queue_depth: self.max_queue_depth,
            makespan_budget_s: self.makespan_budget_s * healthy as f64 / total as f64,
        }
    }
}

/// Why a job was turned away.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RejectReason {
    /// Every queue slot is taken.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The estimated wait exceeds the makespan budget.
    BacklogExceeded {
        /// Estimated wait (s) had the job been admitted.
        wait_est_s: f64,
        /// The configured budget (s).
        budget_s: f64,
    },
    /// The job's device failed mid-service (or the whole pool is down) and
    /// its retry budget is exhausted.
    DeviceFailure {
        /// Pool index of the failed device.
        device: usize,
    },
    /// The tenant's token bucket ran dry: it submitted faster than its
    /// configured sustained rate for longer than its burst allowance.
    RateLimited {
        /// The configured sustained rate (jobs/s).
        rate_jobs_per_s: f64,
    },
}

/// A typed rejection: the serving layer's answer under overload — never a
/// panic, never silent loss.
#[derive(Clone, Debug, PartialEq)]
pub struct Rejected {
    /// The rejected job.
    pub job_id: JobId,
    /// Its tenant.
    pub tenant: String,
    /// Why it was rejected.
    pub reason: RejectReason,
    /// Suggested back-off before resubmitting (s).
    pub retry_after_s: f64,
    /// When the rejection happened on the simulated clock (s).
    pub arrival_s: f64,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, limit } => {
                write!(f, "queue full ({depth}/{limit})")
            }
            RejectReason::BacklogExceeded { wait_est_s, budget_s } => {
                write!(f, "backlog exceeded (est wait {wait_est_s:.4}s > budget {budget_s:.4}s)")
            }
            RejectReason::DeviceFailure { device } => {
                write!(f, "device {device} failed and retries are exhausted")
            }
            RejectReason::RateLimited { rate_jobs_per_s } => {
                write!(f, "tenant rate limit exceeded ({rate_jobs_per_s:.1} jobs/s)")
            }
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} (tenant {}) rejected: {}; retry after {:.4}s",
            self.job_id, self.tenant, self.reason, self.retry_after_s
        )
    }
}

impl std::error::Error for Rejected {}

/// Admission-time service estimate (s) for moving `bytes` through one pool
/// device and contracting them at CPD rank `rank`.
///
/// Serial-path model, mirroring the cluster scheduler's speed proxy: the
/// pipeline is transfer-bound on the host link and bandwidth-bound in the
/// kernel, with γ ≈ 1.5 × rank bytes of device-memory traffic per
/// transferred byte, plus fixed per-launch latencies.
pub fn estimate_service_s(bytes: usize, rank: u32, device: &DeviceSpec) -> f64 {
    let gamma = 1.5 * rank as f64;
    let eff_gbs = 1.0 / (1.0 / device.pcie_h2d_gbs + gamma / device.mem_bandwidth_gbs);
    bytes as f64 / (eff_gbs * 1e9) + (device.pcie_latency_us + device.kernel_launch_us) * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_under_both_limits() {
        let p = AdmissionPolicy { max_queue_depth: 4, makespan_budget_s: 1.0 };
        assert!(p.admit(3, 0.5, 0.1).is_ok());
    }

    #[test]
    fn rejects_on_depth_with_retry_hint() {
        let p = AdmissionPolicy { max_queue_depth: 4, makespan_budget_s: 1.0 };
        let (reason, retry) = p.admit(4, 0.5, 0.2).unwrap_err();
        assert_eq!(reason, RejectReason::QueueFull { depth: 4, limit: 4 });
        assert!(retry > 0.0);
    }

    #[test]
    fn rejects_on_backlog_with_drain_time_hint() {
        let p = AdmissionPolicy { max_queue_depth: 64, makespan_budget_s: 1.0 };
        let (reason, retry) = p.admit(2, 2.5, 0.2).unwrap_err();
        match reason {
            RejectReason::BacklogExceeded { wait_est_s, budget_s } => {
                assert_eq!((wait_est_s, budget_s), (2.5, 1.0));
            }
            other => panic!("wrong reason: {other:?}"),
        }
        assert!((retry - 1.5).abs() < 1e-12, "retry hint is the excess backlog");
    }

    #[test]
    fn degraded_policy_scales_the_budget_with_surviving_devices() {
        let p = AdmissionPolicy { max_queue_depth: 8, makespan_budget_s: 1.0 };
        assert_eq!(p.degraded(4, 4), p, "full health leaves the policy alone");
        let half = p.degraded(2, 4);
        assert_eq!(half.max_queue_depth, 8);
        assert!((half.makespan_budget_s - 0.5).abs() < 1e-12);
        let dead = p.degraded(0, 4);
        assert_eq!(dead.makespan_budget_s, 0.0, "an all-down pool admits no backlog");
    }

    #[test]
    fn rate_limited_rejection_formats() {
        let r = RejectReason::RateLimited { rate_jobs_per_s: 50.0 };
        let msg = format!("{r}");
        assert!(msg.contains("rate limit") && msg.contains("50.0"), "unhelpful message: {msg}");
    }

    #[test]
    fn rejection_formats_and_is_an_error() {
        let r = Rejected {
            job_id: 9,
            tenant: "acme".into(),
            reason: RejectReason::QueueFull { depth: 8, limit: 8 },
            retry_after_s: 0.25,
            arrival_s: 1.0,
        };
        let msg = format!("{r}");
        assert!(msg.contains("job 9") && msg.contains("queue full"));
        let _: &dyn std::error::Error = &r;
    }

    #[test]
    fn service_estimate_scales_with_bytes_and_rank() {
        let d = DeviceSpec::rtx3090();
        let small = estimate_service_s(1 << 16, 8, &d);
        let big = estimate_service_s(1 << 22, 8, &d);
        let big_rank = estimate_service_s(1 << 22, 64, &d);
        assert!(small > 0.0);
        assert!(big > small);
        assert!(big_rank > big, "higher rank means more kernel traffic");
    }
}
