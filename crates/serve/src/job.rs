//! The unit of work the serving layer schedules: one MTTKRP request.

use scalfrag_kernels::FactorSet;
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// Monotonically increasing request identifier, assigned by the client.
pub type JobId = u64;

/// Scheduling class of a job. Lower classes always dispatch before higher
/// ones; within a class the scheduler is deadline-ordered (EDF) and
/// tenant-fair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (interactive queries).
    High,
    /// The default class.
    Normal,
    /// Bulk/batch traffic that tolerates queueing.
    Low,
}

impl Priority {
    /// Dispatch order: smaller dispatches first.
    pub fn class(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One submitted MTTKRP request.
///
/// The tensor and factors are shared handles: a request stream over a hot
/// catalog of tensors (the serving scenario) clones `Arc`s, not data.
#[derive(Clone)]
pub struct MttkrpJob {
    /// Client-assigned identifier (unique within a workload).
    pub id: JobId,
    /// The tenant this request bills to; fairness is round-robin across
    /// tenants.
    pub tenant: String,
    /// The sparse tensor to contract.
    pub tensor: Arc<CooTensor>,
    /// The factor matrices (their rank is the CPD rank of the request).
    pub factors: Arc<FactorSet>,
    /// Target MTTKRP mode.
    pub mode: usize,
    /// Scheduling class.
    pub priority: Priority,
    /// Absolute completion deadline on the simulated clock (s), if any —
    /// drives EDF ordering within a priority class.
    pub deadline_s: Option<f64>,
    /// Arrival time on the simulated clock (s).
    pub arrival_s: f64,
}

impl MttkrpJob {
    /// A `Normal`-priority job with no deadline, arriving at t = 0.
    pub fn new(
        id: JobId,
        tenant: &str,
        tensor: Arc<CooTensor>,
        factors: Arc<FactorSet>,
        mode: usize,
    ) -> Self {
        assert!(mode < tensor.order(), "mode out of range");
        Self {
            id,
            tenant: tenant.to_string(),
            tensor,
            factors,
            mode,
            priority: Priority::Normal,
            deadline_s: None,
            arrival_s: 0.0,
        }
    }

    /// Sets the arrival time.
    pub fn at(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Sets an absolute deadline (simulated seconds).
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// CPD rank of the request.
    pub fn rank(&self) -> u32 {
        self.factors.rank() as u32
    }

    /// Bytes this job moves to the device (tensor + resident factors) —
    /// the input of the admission-time cost estimate.
    pub fn transfer_bytes(&self) -> usize {
        self.tensor.byte_size() + self.factors.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> MttkrpJob {
        let t = Arc::new(CooTensor::random_uniform(&[20, 20, 20], 100, 1));
        let f = Arc::new(FactorSet::random(&[20, 20, 20], 8, 2));
        MttkrpJob::new(7, "acme", t, f, 1)
    }

    #[test]
    fn builder_defaults_and_setters() {
        let j = job();
        assert_eq!(j.priority, Priority::Normal);
        assert_eq!(j.arrival_s, 0.0);
        assert!(j.deadline_s.is_none());
        assert_eq!(j.rank(), 8);
        assert!(j.transfer_bytes() > 0);
        let j = j.at(2.5).with_priority(Priority::High).with_deadline(3.0);
        assert_eq!((j.arrival_s, j.deadline_s), (2.5, Some(3.0)));
        assert_eq!(j.priority, Priority::High);
    }

    #[test]
    fn priority_classes_are_ordered() {
        assert!(Priority::High.class() < Priority::Normal.class());
        assert!(Priority::Normal.class() < Priority::Low.class());
    }

    #[test]
    #[should_panic(expected = "mode out of range")]
    fn invalid_mode_rejected() {
        let t = Arc::new(CooTensor::random_uniform(&[10, 10], 20, 1));
        let f = Arc::new(FactorSet::random(&[10, 10], 4, 2));
        let _ = MttkrpJob::new(0, "t", t, f, 2);
    }
}
