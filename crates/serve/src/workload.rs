//! Seeded synthetic workload generation for load-testing the server.
//!
//! A workload is an open-loop arrival stream: shape classes with skewed
//! (Zipf-like) popularity, a small set of concrete tensors per class,
//! exponential interarrivals with a bursty rate modulation, multiple
//! tenants, a priority mix, and deadlines on the high-priority slice.
//! Everything derives from one `u64` seed, so the same spec always yields
//! the identical job stream — the determinism tests rely on this.

use crate::admission::estimate_service_s;
use crate::job::{MttkrpJob, Priority};
use rand::{Rng, SeedableRng};
use scalfrag_gpusim::DeviceSpec;
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::{gen, CooTensor};
use std::sync::Arc;

/// Parameters of a synthetic serving workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Total jobs to generate.
    pub jobs: usize,
    /// Number of billing tenants (round-robin weighted by the RNG).
    pub tenants: usize,
    /// Distinct shape classes (the plan cache's working-set size).
    pub shape_classes: usize,
    /// Concrete tensor instances per class — same shape statistics,
    /// different seeds, so they hit the same [`scalfrag_tensor::FeatureKey`].
    pub variants_per_class: usize,
    /// Zipf exponent over class popularity (`0` = uniform, `1` ≈ classic
    /// web skew: a few hot shapes dominate).
    pub skew: f64,
    /// Mean interarrival gap (s) of the open-loop stream.
    pub mean_interarrival_s: f64,
    /// Burst factor ≥ 1: arrivals alternate between `burstiness`× the base
    /// rate and `1/burstiness`× it every 20 jobs (1 = Poisson).
    pub burstiness: f64,
    /// CPD rank of every job.
    pub rank: usize,
    /// Nonzeros of the smallest class; class `i` holds `base_nnz × 1.6^i`.
    pub base_nnz: usize,
    /// RNG seed — the whole stream is a pure function of the spec.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            jobs: 200,
            tenants: 4,
            shape_classes: 12,
            variants_per_class: 3,
            skew: 1.0,
            mean_interarrival_s: 2e-3,
            burstiness: 3.0,
            rank: 16,
            base_nnz: 3_000,
            seed: 0x5eed,
        }
    }
}

/// One shape class: the tensors jobs of this class draw from, plus the
/// factor set shared by all of them (same dims, same rank).
struct ShapeClass {
    tensors: Vec<Arc<CooTensor>>,
    factors: Arc<FactorSet>,
    mode: usize,
}

fn build_classes(spec: &WorkloadSpec) -> Vec<ShapeClass> {
    (0..spec.shape_classes)
        .map(|c| {
            // Geometric nnz growth separates classes by several
            // quarter-octave buckets; dims grow alongside so density stays
            // in a realistic sparse regime.
            let scale = 1.6f64.powi(c as i32);
            let nnz = (spec.base_nnz as f64 * scale) as usize;
            let dims = [
                (80.0 * scale.sqrt()) as u32 + 3 * c as u32,
                (60.0 * scale.sqrt()) as u32 + 2 * c as u32,
                (50.0 * scale.sqrt()) as u32 + c as u32,
            ];
            // Alternate slice-skewed and uniform sparsity patterns so the
            // predictor sees both regimes.
            let tensors = (0..spec.variants_per_class)
                .map(|v| {
                    let tensor_seed =
                        spec.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ v as u64;
                    Arc::new(if c % 2 == 0 {
                        gen::zipf_slices(&dims, nnz, 1.1, tensor_seed)
                    } else {
                        gen::uniform(&dims, nnz, tensor_seed)
                    })
                })
                .collect();
            let factors =
                Arc::new(FactorSet::random(&dims, spec.rank, spec.seed ^ 0xfac ^ c as u64));
            ShapeClass { tensors, factors, mode: c % 3 }
        })
        .collect()
}

/// Generates the job stream. Arrival times are strictly increasing; job
/// ids are the stream index.
pub fn synthesize(spec: &WorkloadSpec) -> Vec<MttkrpJob> {
    assert!(spec.jobs > 0 && spec.tenants > 0, "workload needs jobs and tenants");
    assert!(spec.shape_classes > 0 && spec.variants_per_class > 0);
    assert!(spec.burstiness >= 1.0, "burstiness is a factor >= 1");
    let classes = build_classes(spec);
    // Zipf-like popularity: weight of class i ∝ 1/(i+1)^skew.
    let weights: Vec<f64> =
        (0..spec.shape_classes).map(|i| 1.0 / (i as f64 + 1.0).powf(spec.skew)).collect();
    let total_w: f64 = weights.iter().sum();

    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let mut t = 0.0f64;
    (0..spec.jobs)
        .map(|i| {
            // Bursty exponential interarrivals: rate alternates high/low
            // every 20 jobs.
            let rate_mul = if (i / 20) % 2 == 0 { spec.burstiness } else { 1.0 / spec.burstiness };
            let u: f64 = rng.gen();
            t += -(1.0 - u).max(1e-12).ln() * spec.mean_interarrival_s / rate_mul;

            let mut pick = rng.gen::<f64>() * total_w;
            let mut class_idx = 0usize;
            for (ci, w) in weights.iter().enumerate() {
                class_idx = ci;
                if pick < *w {
                    break;
                }
                pick -= w;
            }
            let class = &classes[class_idx];
            let tensor = Arc::clone(&class.tensors[rng.gen_range(0..class.tensors.len())]);
            let tenant = format!("tenant-{}", rng.gen_range(0..spec.tenants));
            let mut job =
                MttkrpJob::new(i as u64, &tenant, tensor, Arc::clone(&class.factors), class.mode)
                    .at(t);
            // Priority mix: 10 % High (with a deadline), 70 % Normal, 20 % Low.
            let p: f64 = rng.gen();
            job = if p < 0.1 {
                job.with_priority(Priority::High).with_deadline(t + 8.0 * spec.mean_interarrival_s)
            } else if p < 0.8 {
                job.with_priority(Priority::Normal)
            } else {
                job.with_priority(Priority::Low)
            };
            job
        })
        .collect()
}

/// Mean admission-time service estimate over a job stream (s) — handy for
/// calibrating `mean_interarrival_s` to a target utilisation: offered load
/// ≈ `mean_service / (mean_interarrival × num_devices)`.
pub fn mean_service_estimate_s(jobs: &[MttkrpJob], device: &DeviceSpec) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    jobs.iter().map(|j| estimate_service_s(j.transfer_bytes(), j.rank(), device)).sum::<f64>()
        / jobs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let spec = WorkloadSpec { jobs: 50, ..Default::default() };
        let a = synthesize(&spec);
        let b = synthesize(&spec);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, &x.tenant, x.mode), (y.id, &y.tenant, y.mode));
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
            assert_eq!(x.tensor.nnz(), y.tensor.nnz());
        }
        for w in a.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s, "arrivals sorted");
        }
    }

    #[test]
    fn popularity_is_skewed_toward_small_classes() {
        let spec = WorkloadSpec { jobs: 300, skew: 1.2, ..Default::default() };
        let jobs = synthesize(&spec);
        let small = jobs.iter().filter(|j| j.tensor.nnz() < 2 * spec.base_nnz).count();
        assert!(small * 3 > jobs.len(), "hot (small) classes should dominate: {small}/300");
    }

    #[test]
    fn mixes_tenants_priorities_and_deadlines() {
        let jobs = synthesize(&WorkloadSpec::default());
        let tenants: HashSet<_> = jobs.iter().map(|j| j.tenant.clone()).collect();
        assert!(tenants.len() >= 3, "expected several tenants, got {tenants:?}");
        assert!(jobs.iter().any(|j| j.priority == Priority::High && j.deadline_s.is_some()));
        assert!(jobs.iter().any(|j| j.priority == Priority::Low));
        let seed_changed = synthesize(&WorkloadSpec { seed: 1, ..Default::default() });
        assert!(
            jobs.iter().zip(&seed_changed).any(|(a, b)| a.arrival_s != b.arrival_s),
            "different seed must give a different stream"
        );
    }

    #[test]
    fn service_estimate_helper_is_positive() {
        let jobs = synthesize(&WorkloadSpec { jobs: 10, ..Default::default() });
        assert!(mean_service_estimate_s(&jobs, &DeviceSpec::rtx3090()) > 0.0);
        assert_eq!(mean_service_estimate_s(&[], &DeviceSpec::rtx3090()), 0.0);
    }
}
