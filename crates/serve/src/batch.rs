//! Batch-group formation: coalescing compatible queued jobs into one
//! fused dispatch.
//!
//! The batch-fused serving path replaces *job → plan → interpret* with
//! *group → fused plan → interpret*: after the QoS queue picks a lead
//! job, the scheduler drains every queued job that can share the lead's
//! fused plan and dispatches the whole group as one
//! `scalfrag_pipeline::build_batched_plan` schedule — the shared factor
//! matrices cross PCIe once instead of once per job.
//!
//! ## Formation rules
//!
//! Two queued jobs may share a fused plan only when ([`BatchGroup::compatible`]):
//!
//! 1. their quantized [`FeatureKey`]s are
//!    [`FeatureKey::batch_compatible`] (exact equality — an equivalence
//!    relation, so group membership is order-independent),
//! 2. they hold the *same* factor-set handle (`Arc::ptr_eq` — the fused
//!    plan uploads one factor set, so value-equal copies do not qualify),
//! 3. their tensors have identical dims and the same MTTKRP mode (the
//!    fused plan has one output geometry), and
//! 4. they sit in the same priority class — batching must never let a
//!    bulk job ride along with (and stretch) a latency-sensitive one.
//!
//! ## Wait accounting
//!
//! With `dev_free` the dispatch device's free time, a member's *ready*
//! time is `t_ready = max(dev_free, arrival)` and the group starts at
//! `group_start = max over members of t_ready`. The member's queue wait
//! is `t_ready − arrival` (it would have waited that long solo) and its
//! batch-formation wait is `group_start − t_ready` — the extra idle time
//! the fusion cost it, reported as `PhaseTiming::batch_wait_s`.

use crate::queue::Pending;
use std::sync::Arc;

/// A set of queued jobs dispatched as one fused plan. The lead (the QoS
/// queue's pick) is `members[0]`; the rest joined in admission-sequence
/// order.
pub struct BatchGroup {
    /// The fused members, lead first.
    pub members: Vec<Pending>,
}

impl BatchGroup {
    /// Wraps an already-formed member list (lead first, non-empty).
    pub fn new(members: Vec<Pending>) -> Self {
        assert!(!members.is_empty(), "a batch group needs at least the lead");
        debug_assert!(
            members[1..].iter().all(|m| Self::compatible(&members[0], m)),
            "every member must be batch-compatible with the lead"
        );
        Self { members }
    }

    /// The QoS queue's pick that seeded the group.
    pub fn lead(&self) -> &Pending {
        &self.members[0]
    }

    /// Number of fused jobs.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether `candidate` may join a group led by `lead` — the four
    /// formation rules (equal quantized key, shared factor handle, equal
    /// dims + mode, same priority class). Symmetric and transitive, so a
    /// group is well-defined no matter which member leads.
    pub fn compatible(lead: &Pending, candidate: &Pending) -> bool {
        lead.key.batch_compatible(&candidate.key)
            && Arc::ptr_eq(&lead.job.factors, &candidate.job.factors)
            && lead.job.mode == candidate.job.mode
            && lead.job.tensor.dims() == candidate.job.tensor.dims()
            && lead.job.priority.class() == candidate.job.priority.class()
    }

    /// Member `i`'s ready time: the later of the device freeing and the
    /// job arriving.
    pub fn t_ready(&self, i: usize, dev_free: f64) -> f64 {
        dev_free.max(self.members[i].job.arrival_s)
    }

    /// When the fused plan starts: the last member's ready time.
    pub fn group_start(&self, dev_free: f64) -> f64 {
        (0..self.members.len()).map(|i| self.t_ready(i, dev_free)).fold(dev_free, f64::max)
    }

    /// Member `i`'s batch-formation wait: group start minus its own ready
    /// time — zero for the member that closed the group.
    pub fn batch_wait_s(&self, i: usize, dev_free: f64) -> f64 {
        (self.group_start(dev_free) - self.t_ready(i, dev_free)).max(0.0)
    }

    /// Sum of the members' tensor payloads (bytes) — the denominator of
    /// the proportional shared-H2D split in per-job phase accounting.
    pub fn total_tensor_bytes(&self) -> usize {
        self.members.iter().map(|m| m.job.tensor.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{MttkrpJob, Priority};
    use scalfrag_kernels::FactorSet;
    use scalfrag_tensor::{CooTensor, FeatureKey};

    fn pending(
        id: u64,
        tensor: &Arc<CooTensor>,
        factors: &Arc<FactorSet>,
        mode: usize,
        priority: Priority,
        arrival: f64,
    ) -> Pending {
        let job = MttkrpJob::new(id, "acme", Arc::clone(tensor), Arc::clone(factors), mode)
            .with_priority(priority)
            .at(arrival);
        let key = FeatureKey::of(&job.tensor, job.mode, job.rank());
        Pending { job, seq: id, est_s: 1e-3, attempt: 1, key }
    }

    fn catalog() -> (Arc<CooTensor>, Arc<CooTensor>, Arc<FactorSet>) {
        let dims = [40u32, 30, 20];
        // Seeds 1 and 16 land in the same quantized buckets at this size —
        // two *variants* of one shape class, like the workload generator's.
        let a = Arc::new(CooTensor::random_uniform(&dims, 600, 1));
        let b = Arc::new(CooTensor::random_uniform(&dims, 600, 16));
        let f = Arc::new(FactorSet::random(&dims, 8, 3));
        (a, b, f)
    }

    #[test]
    fn same_class_jobs_are_compatible() {
        let (a, b, f) = catalog();
        let lead = pending(0, &a, &f, 0, Priority::Normal, 0.0);
        let mate = pending(1, &b, &f, 0, Priority::Normal, 0.1);
        assert!(BatchGroup::compatible(&lead, &mate));
        assert!(BatchGroup::compatible(&mate, &lead), "compatibility is symmetric");
    }

    #[test]
    fn formation_rules_reject_mismatches() {
        let (a, b, f) = catalog();
        let lead = pending(0, &a, &f, 0, Priority::Normal, 0.0);
        // Different mode.
        assert!(!BatchGroup::compatible(&lead, &pending(1, &b, &f, 1, Priority::Normal, 0.0)));
        // Different priority class.
        assert!(!BatchGroup::compatible(&lead, &pending(2, &b, &f, 0, Priority::Low, 0.0)));
        // Value-equal but distinct factor handle.
        let f2 = Arc::new(FactorSet::random(&[40, 30, 20], 8, 3));
        assert!(!BatchGroup::compatible(&lead, &pending(3, &b, &f2, 0, Priority::Normal, 0.0)));
        // Different dims (and hence a different key).
        let small = Arc::new(CooTensor::random_uniform(&[10, 10, 10], 50, 4));
        let fs = Arc::new(FactorSet::random(&[10, 10, 10], 8, 5));
        assert!(!BatchGroup::compatible(&lead, &pending(4, &small, &fs, 0, Priority::Normal, 0.0)));
    }

    #[test]
    fn wait_accounting_charges_the_late_member_nothing() {
        let (a, b, f) = catalog();
        let g = BatchGroup::new(vec![
            pending(0, &a, &f, 0, Priority::Normal, 1.0),
            pending(1, &b, &f, 0, Priority::Normal, 3.0),
        ]);
        // Device free at 2.0: member 0 ready at 2.0, member 1 at 3.0.
        assert_eq!(g.group_start(2.0), 3.0);
        assert_eq!(g.batch_wait_s(0, 2.0), 1.0, "early member waits for the group to close");
        assert_eq!(g.batch_wait_s(1, 2.0), 0.0, "the closing member never batch-waits");
        // Device free after every arrival: nobody batch-waits.
        assert_eq!(g.group_start(5.0), 5.0);
        assert_eq!(g.batch_wait_s(0, 5.0), 0.0);
        assert_eq!(g.batch_wait_s(1, 5.0), 0.0);
    }

    #[test]
    fn byte_total_sums_members() {
        let (a, b, f) = catalog();
        let g = BatchGroup::new(vec![
            pending(0, &a, &f, 0, Priority::Normal, 0.0),
            pending(1, &b, &f, 0, Priority::Normal, 0.0),
        ]);
        assert_eq!(g.total_tensor_bytes(), a.byte_size() + b.byte_size());
        assert_eq!(g.size(), 2);
        assert_eq!(g.lead().job.id, 0);
    }

    #[test]
    #[should_panic(expected = "at least the lead")]
    fn empty_group_rejected() {
        let _ = BatchGroup::new(Vec::new());
    }
}
