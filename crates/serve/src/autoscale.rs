//! Pool autoscaling: attach and detach simulated devices under sustained
//! load, with hysteresis.
//!
//! The server's [`crate::DevicePool`] is the *capacity ceiling*; with an
//! [`AutoscalePolicy`] configured, only `min_devices` of it start active
//! and the [`Autoscaler`] grows and shrinks the active set as the queue
//! depth crosses its watermarks:
//!
//! * depth ≥ `high_watermark` sustained for `sustain_s` → **attach** the
//!   lowest-index inactive device. An attaching device pays
//!   `attach_delay_s` of warm-up before taking work — the same
//!   park-then-rejoin mechanics the fault path uses for a device healing
//!   from a transient outage.
//! * depth ≤ `low_watermark` sustained for `sustain_s` → **detach** the
//!   highest-index active *idle* device (never below `min_devices`, and
//!   never one with a job in flight).
//!
//! The two sustain windows are the hysteresis: a depth oscillating around
//! a watermark between consecutive events resets the clock instead of
//! flapping the pool. Every decision is a pure function of simulated
//! event times, so autoscaled runs stay bit-reproducible.

/// Autoscaling thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscalePolicy {
    /// Devices that are always active (the warm floor).
    pub min_devices: usize,
    /// Queue depth that, sustained, triggers an attach.
    pub high_watermark: usize,
    /// Queue depth that, sustained, triggers a detach.
    pub low_watermark: usize,
    /// How long (s) a watermark crossing must persist before acting.
    pub sustain_s: f64,
    /// Warm-up (s) an attached device pays before its first dispatch.
    pub attach_delay_s: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            min_devices: 1,
            high_watermark: 16,
            low_watermark: 2,
            sustain_s: 5e-3,
            attach_delay_s: 1e-3,
        }
    }
}

/// One scaling action, on the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleEvent {
    /// When the action fired (s).
    pub time_s: f64,
    /// `true` = attach, `false` = detach.
    pub attach: bool,
    /// Pool index of the device acted on.
    pub device: usize,
}

/// The autoscaler state machine: stepped at every scheduling event.
pub struct Autoscaler {
    policy: AutoscalePolicy,
    above_since: Option<f64>,
    below_since: Option<f64>,
    /// Every attach/detach performed, in order.
    pub events: Vec<ScaleEvent>,
}

impl Autoscaler {
    /// A fresh autoscaler under `policy`.
    pub fn new(policy: AutoscalePolicy) -> Self {
        assert!(policy.min_devices >= 1, "autoscaling needs at least one warm device");
        assert!(policy.low_watermark < policy.high_watermark, "watermarks must leave a dead band");
        assert!(policy.sustain_s >= 0.0 && policy.attach_delay_s >= 0.0);
        Self { policy, above_since: None, below_since: None, events: Vec::new() }
    }

    /// The initial active mask for a pool of `total` devices: the first
    /// `min_devices` are warm, the rest parked.
    pub fn initial_active(&self, total: usize) -> Vec<bool> {
        (0..total).map(|i| i < self.policy.min_devices.min(total)).collect()
    }

    /// Attaches performed so far.
    pub fn attaches(&self) -> usize {
        self.events.iter().filter(|e| e.attach).count()
    }

    /// Detaches performed so far.
    pub fn detaches(&self) -> usize {
        self.events.iter().filter(|e| !e.attach).count()
    }

    /// Observes queue depth `depth` at simulated time `now` and applies at
    /// most one scaling action to `active`/`free_at`. An attached device
    /// rejoins no earlier than `now + attach_delay_s` (and no earlier than
    /// its own past busy horizon); a detached device keeps its `free_at`
    /// history and is simply skipped by dispatch.
    pub fn step(&mut self, now: f64, depth: usize, active: &mut [bool], free_at: &mut [f64]) {
        let total = active.len();
        let n_active = active.iter().filter(|a| **a).count();
        if depth >= self.policy.high_watermark && n_active < total {
            self.below_since = None;
            match self.above_since {
                None => self.above_since = Some(now),
                Some(t0) if now - t0 >= self.policy.sustain_s => {
                    let dev = active.iter().position(|a| !a).expect("n_active < total");
                    active[dev] = true;
                    free_at[dev] = free_at[dev].max(now + self.policy.attach_delay_s);
                    self.events.push(ScaleEvent { time_s: now, attach: true, device: dev });
                    self.above_since = None;
                }
                Some(_) => {}
            }
        } else if depth <= self.policy.low_watermark && n_active > self.policy.min_devices {
            self.above_since = None;
            match self.below_since {
                None => self.below_since = Some(now),
                Some(t0) if now - t0 >= self.policy.sustain_s => {
                    // Highest-index active device that is idle right now;
                    // in-flight work is never interrupted.
                    let candidate = (0..total)
                        .rev()
                        .find(|&d| active[d] && free_at[d].is_finite() && free_at[d] <= now);
                    if let Some(dev) = candidate {
                        active[dev] = false;
                        self.events.push(ScaleEvent { time_s: now, attach: false, device: dev });
                        self.below_since = None;
                    }
                }
                Some(_) => {}
            }
        } else {
            self.above_since = None;
            self.below_since = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            min_devices: 1,
            high_watermark: 4,
            low_watermark: 1,
            sustain_s: 1.0,
            attach_delay_s: 0.5,
        }
    }

    #[test]
    fn sustained_pressure_attaches_with_warmup() {
        let mut a = Autoscaler::new(policy());
        let mut active = a.initial_active(2);
        let mut free_at = vec![0.0, 0.0];
        assert_eq!(active, vec![true, false]);
        a.step(0.0, 8, &mut active, &mut free_at);
        assert!(!active[1], "one observation is not sustained pressure");
        a.step(0.5, 8, &mut active, &mut free_at);
        assert!(!active[1], "0.5s < sustain window");
        a.step(1.0, 8, &mut active, &mut free_at);
        assert!(active[1], "1s of pressure must attach");
        assert_eq!(free_at[1], 1.5, "attach pays the warm-up delay");
        assert_eq!(a.attaches(), 1);
        assert_eq!(a.events, vec![ScaleEvent { time_s: 1.0, attach: true, device: 1 }]);
    }

    #[test]
    fn dips_inside_the_window_reset_the_clock() {
        let mut a = Autoscaler::new(policy());
        let mut active = a.initial_active(2);
        let mut free_at = vec![0.0, 0.0];
        a.step(0.0, 8, &mut active, &mut free_at);
        a.step(0.5, 2, &mut active, &mut free_at); // dead band: resets
        a.step(1.0, 8, &mut active, &mut free_at);
        a.step(1.5, 8, &mut active, &mut free_at);
        assert!(!active[1], "the dip at 0.5 must have reset the sustain clock");
        a.step(2.0, 8, &mut active, &mut free_at);
        assert!(active[1]);
    }

    #[test]
    fn idle_lull_detaches_but_never_below_the_floor() {
        let mut a = Autoscaler::new(policy());
        let mut active = vec![true, true];
        let mut free_at = vec![0.0, 0.0];
        a.step(10.0, 0, &mut active, &mut free_at);
        a.step(11.0, 0, &mut active, &mut free_at);
        assert_eq!(active, vec![true, false], "sustained idle detaches the top device");
        assert_eq!(a.detaches(), 1);
        a.step(20.0, 0, &mut active, &mut free_at);
        a.step(21.0, 0, &mut active, &mut free_at);
        assert_eq!(active, vec![true, false], "min_devices floors the shrink");
    }

    #[test]
    fn busy_devices_are_never_detached() {
        let mut a = Autoscaler::new(policy());
        let mut active = vec![true, true];
        let mut free_at = vec![99.0, 99.0]; // both busy far into the future
        a.step(10.0, 0, &mut active, &mut free_at);
        a.step(11.0, 0, &mut active, &mut free_at);
        assert_eq!(active, vec![true, true], "in-flight work must not be interrupted");
        // The moment one drains, the pending shrink fires.
        free_at[1] = 11.5;
        a.step(12.0, 0, &mut active, &mut free_at);
        assert_eq!(active, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "dead band")]
    fn inverted_watermarks_rejected() {
        let _ = Autoscaler::new(AutoscalePolicy {
            high_watermark: 2,
            low_watermark: 2,
            ..AutoscalePolicy::default()
        });
    }
}
