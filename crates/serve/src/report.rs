//! The serving report: per-job records plus the aggregate metrics a
//! production dashboard would chart — throughput, latency percentiles,
//! cache hit rate, rejection counts.

use crate::admission::{RejectReason, Rejected};
use crate::job::{JobId, Priority};
use crate::plan_cache::CacheStats;
use scalfrag_core::PhaseTiming;
use scalfrag_linalg::Mat;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// One completed job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Client-assigned job id.
    pub id: JobId,
    /// Billing tenant.
    pub tenant: String,
    /// Scheduling class the job ran at.
    pub priority: Priority,
    /// Pool device index it executed on.
    pub device: usize,
    /// Arrival time (s, simulated clock).
    pub arrival_s: f64,
    /// Dispatch time (s).
    pub start_s: f64,
    /// Completion time (s).
    pub finish_s: f64,
    /// Simulated planning time (s) — near-zero on a cache hit.
    pub plan_s: f64,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Phase breakdown; `timing.queue_s` holds the queue wait.
    pub timing: PhaseTiming,
    /// The job's deadline, if it had one.
    pub deadline_s: Option<f64>,
    /// 1-based submission attempt this record completed on (`> 1` means
    /// the job was resubmitted after a rejection or device failure;
    /// `arrival_s` then dates from the last resubmission).
    pub attempt: u32,
    /// How many jobs shared this job's fused dispatch (1 = solo group).
    pub group_size: usize,
    /// MTTKRP output (only kept in functional mode).
    pub output: Option<Mat>,
}

impl JobRecord {
    /// End-to-end latency: arrival → completion.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Time spent queued before dispatch.
    pub fn queue_wait_s(&self) -> f64 {
        self.timing.queue_s
    }

    /// Time spent waiting for the batch group to close after leaving the
    /// queue (zero for solo dispatch).
    pub fn batch_wait_s(&self) -> f64 {
        self.timing.batch_wait_s
    }

    /// `Some(true/false)` when the job had a deadline.
    pub fn met_deadline(&self) -> Option<bool> {
        self.deadline_s.map(|d| self.finish_s <= d)
    }
}

/// The aggregate outcome of serving one job stream.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Completed jobs, in completion order.
    pub completed: Vec<JobRecord>,
    /// Typed rejections, in arrival order.
    pub rejected: Vec<Rejected>,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Simulated makespan: last completion time (s).
    pub makespan_s: f64,
    /// Highest queue depth observed.
    pub peak_queue_depth: usize,
    /// Full predictor trainings performed while serving (a shared
    /// [`scalfrag_autotune::TrainedPredictor`] keeps this at one per rank).
    pub predictor_trainings: usize,
    /// Jobs sent back through admission (rejection retries honouring
    /// `retry_after_s`, plus requeues after device failures).
    pub resubmissions: usize,
    /// Fused dispatches performed (each covers `group_size` jobs) — the
    /// denominator of [`ServeReport::mean_batch_occupancy`].
    pub dispatch_groups: usize,
    /// Devices attached by the pool autoscaler.
    pub device_attaches: usize,
    /// Devices detached by the pool autoscaler.
    pub device_detaches: usize,
    /// Completed jobs whose phase timing failed
    /// `PhaseTiming::check_consistency` — always zero on a healthy
    /// simulation; nonzero values are a correctness signal, not noise.
    pub timing_inconsistencies: usize,
    /// The first job whose timing failed the consistency check, if any.
    pub first_inconsistent_job: Option<JobId>,
    /// End-of-run plan-cache snapshot (only when
    /// [`crate::ServerConfig::snapshot_cache`] is set) — feed it to
    /// [`crate::ServerConfig::warm_snapshot`] to warm-start the next run.
    /// Excluded from [`ServeReport::fingerprint`]: its text duplicates the
    /// cache counters already hashed and is deterministic by construction
    /// (covered by the `plan_cache` round-trip tests).
    pub cache_snapshot: Option<String>,
}

impl ServeReport {
    /// Completed jobs per simulated second.
    pub fn throughput_jobs_per_s(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed.len() as f64 / self.makespan_s
        }
    }

    /// Nearest-rank latency percentile over completed jobs, `p ∈ [0, 1]`.
    pub fn latency_percentile_s(&self, p: f64) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.completed.iter().map(JobRecord::latency_s).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx]
    }

    /// Median latency (s).
    pub fn p50_latency_s(&self) -> f64 {
        self.latency_percentile_s(0.50)
    }

    /// 95th-percentile latency (s).
    pub fn p95_latency_s(&self) -> f64 {
        self.latency_percentile_s(0.95)
    }

    /// 99th-percentile latency (s).
    pub fn p99_latency_s(&self) -> f64 {
        self.latency_percentile_s(0.99)
    }

    /// 99.9th-percentile latency (s) — the tail the batch window and the
    /// autoscaler trade against throughput.
    pub fn p999_latency_s(&self) -> f64 {
        self.latency_percentile_s(0.999)
    }

    /// Mean jobs per fused dispatch (1.0 = no batching happened; 0 when
    /// nothing dispatched).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.dispatch_groups == 0 {
            0.0
        } else {
            self.completed.len() as f64 / self.dispatch_groups as f64
        }
    }

    /// The batch-occupancy curve: `(group size, number of groups)` pairs
    /// in ascending size order, reconstructed from the per-job records
    /// (every member of a size-g group reports `group_size = g`).
    pub fn batch_occupancy_curve(&self) -> Vec<(usize, usize)> {
        let mut members: std::collections::BTreeMap<usize, usize> = Default::default();
        for r in &self.completed {
            *members.entry(r.group_size.max(1)).or_insert(0) += 1;
        }
        members.into_iter().map(|(size, n)| (size, n / size)).collect()
    }

    /// Mean queue wait over completed jobs (s).
    pub fn mean_queue_wait_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(JobRecord::queue_wait_s).sum::<f64>()
            / self.completed.len() as f64
    }

    /// Total simulated planning time across completed jobs (s) — the
    /// number the plan-cache ablation divides.
    pub fn total_plan_s(&self) -> f64 {
        self.completed.iter().map(|r| r.plan_s).sum()
    }

    /// Rejected jobs over all submissions.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.completed.len() + self.rejected.len();
        if total == 0 {
            0.0
        } else {
            self.rejected.len() as f64 / total as f64
        }
    }

    /// Rejection counts split by reason: `(queue_full, backlog_exceeded)`.
    /// Device-failure rejections are counted separately by
    /// [`ServeReport::device_failure_rejections`].
    pub fn rejections_by_reason(&self) -> (usize, usize) {
        let count = |pred: fn(&RejectReason) -> bool| {
            self.rejected.iter().filter(|r| pred(&r.reason)).count()
        };
        (
            count(|r| matches!(r, RejectReason::QueueFull { .. })),
            count(|r| matches!(r, RejectReason::BacklogExceeded { .. })),
        )
    }

    /// Jobs finally rejected because their device failed and the retry
    /// budget ran out.
    pub fn device_failure_rejections(&self) -> usize {
        self.rejected
            .iter()
            .filter(|r| matches!(r.reason, RejectReason::DeviceFailure { .. }))
            .count()
    }

    /// Jobs rejected by a tenant's token bucket.
    pub fn rate_limited_rejections(&self) -> usize {
        self.rejected
            .iter()
            .filter(|r| matches!(r.reason, RejectReason::RateLimited { .. }))
            .count()
    }

    /// Deadline hit rate among completed jobs that had one (`None` when no
    /// job carried a deadline).
    pub fn deadline_hit_rate(&self) -> Option<f64> {
        let with: Vec<bool> = self.completed.iter().filter_map(JobRecord::met_deadline).collect();
        if with.is_empty() {
            None
        } else {
            Some(with.iter().filter(|&&m| m).count() as f64 / with.len() as f64)
        }
    }

    /// A deterministic digest of everything simulated — job order, device
    /// placement, all clock values (bit-exact), cache counters and typed
    /// rejections. Two runs of the same seeded workload must produce equal
    /// fingerprints; wall-clock noise never enters.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for r in &self.completed {
            r.id.hash(&mut h);
            r.tenant.hash(&mut h);
            r.priority.hash(&mut h);
            r.device.hash(&mut h);
            r.arrival_s.to_bits().hash(&mut h);
            r.start_s.to_bits().hash(&mut h);
            r.finish_s.to_bits().hash(&mut h);
            r.plan_s.to_bits().hash(&mut h);
            r.cache_hit.hash(&mut h);
            r.timing.queue_s.to_bits().hash(&mut h);
            r.timing.batch_wait_s.to_bits().hash(&mut h);
            r.timing.total_s.to_bits().hash(&mut h);
            r.attempt.hash(&mut h);
            r.group_size.hash(&mut h);
        }
        for r in &self.rejected {
            r.job_id.hash(&mut h);
            r.tenant.hash(&mut h);
            format!("{:?}", r.reason).hash(&mut h);
            r.retry_after_s.to_bits().hash(&mut h);
        }
        (self.cache.hits, self.cache.misses, self.cache.evictions).hash(&mut h);
        self.peak_queue_depth.hash(&mut h);
        self.makespan_s.to_bits().hash(&mut h);
        self.resubmissions.hash(&mut h);
        self.dispatch_groups.hash(&mut h);
        self.device_attaches.hash(&mut h);
        self.device_detaches.hash(&mut h);
        self.timing_inconsistencies.hash(&mut h);
        self.first_inconsistent_job.hash(&mut h);
        h.finish()
    }

    /// Multi-line human-readable summary (what `serve_load` prints).
    pub fn render(&self) -> String {
        let (full, backlog) = self.rejections_by_reason();
        let mut out = String::new();
        out.push_str(&format!(
            "completed {} | rejected {} (queue-full {}, backlog {}, device-failure {}) | makespan {:.4}s\n",
            self.completed.len(),
            self.rejected.len(),
            full,
            backlog,
            self.device_failure_rejections(),
            self.makespan_s,
        ));
        if self.resubmissions > 0 {
            out.push_str(&format!("resubmissions {}\n", self.resubmissions));
        }
        if self.timing_inconsistencies > 0 {
            out.push_str(&format!(
                "TIMING INCONSISTENCIES {} (first job {:?})\n",
                self.timing_inconsistencies, self.first_inconsistent_job,
            ));
        }
        out.push_str(&format!(
            "throughput {:.1} jobs/s | latency p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms p999 {:.3}ms | mean queue wait {:.3}ms\n",
            self.throughput_jobs_per_s(),
            self.p50_latency_s() * 1e3,
            self.p95_latency_s() * 1e3,
            self.p99_latency_s() * 1e3,
            self.p999_latency_s() * 1e3,
            self.mean_queue_wait_s() * 1e3,
        ));
        if self.dispatch_groups > 0 {
            let curve = self
                .batch_occupancy_curve()
                .iter()
                .map(|(size, n)| format!("{size}x{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "batching: {} groups, mean occupancy {:.2} [{curve}]\n",
                self.dispatch_groups,
                self.mean_batch_occupancy(),
            ));
        }
        if self.device_attaches + self.device_detaches > 0 {
            out.push_str(&format!(
                "autoscale: {} attaches, {} detaches\n",
                self.device_attaches, self.device_detaches,
            ));
        }
        if self.rate_limited_rejections() > 0 {
            out.push_str(&format!("rate-limited {}\n", self.rate_limited_rejections()));
        }
        out.push_str(&format!(
            "plan cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {}/{} entries | total plan time {:.3}ms | trainings {}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions,
            self.cache.entries,
            self.cache.capacity,
            self.total_plan_s() * 1e3,
            self.predictor_trainings,
        ));
        if let Some(rate) = self.deadline_hit_rate() {
            out.push_str(&format!("deadline hit rate {:.1}%\n", rate * 100.0));
        }
        out.push_str(&format!("peak queue depth {}\n", self.peak_queue_depth));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: JobId, arrival: f64, finish: f64) -> JobRecord {
        JobRecord {
            id,
            tenant: format!("t{}", id % 2),
            priority: Priority::Normal,
            device: 0,
            arrival_s: arrival,
            start_s: arrival,
            finish_s: finish,
            plan_s: 1e-4,
            cache_hit: id > 0,
            timing: PhaseTiming::default().with_queue(0.0),
            deadline_s: if id == 2 { Some(finish - 1.0) } else { None },
            attempt: 1,
            group_size: 1,
            output: None,
        }
    }

    fn report() -> ServeReport {
        ServeReport {
            completed: (0..10u64).map(|i| record(i, i as f64, i as f64 + 1.0)).collect(),
            rejected: vec![Rejected {
                job_id: 99,
                tenant: "t1".into(),
                reason: RejectReason::QueueFull { depth: 4, limit: 4 },
                retry_after_s: 0.5,
                arrival_s: 3.0,
            }],
            cache: CacheStats { hits: 9, misses: 1, evictions: 0, capacity: 64, entries: 1 },
            makespan_s: 10.0,
            peak_queue_depth: 4,
            predictor_trainings: 1,
            resubmissions: 0,
            dispatch_groups: 10,
            device_attaches: 0,
            device_detaches: 0,
            timing_inconsistencies: 0,
            first_inconsistent_job: None,
            cache_snapshot: None,
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let r = report();
        assert_eq!(r.throughput_jobs_per_s(), 1.0);
        assert_eq!(r.p50_latency_s(), 1.0);
        assert_eq!(r.p99_latency_s(), 1.0);
        assert!((r.rejection_rate() - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(r.rejections_by_reason(), (1, 0));
        assert!((r.total_plan_s() - 10.0 * 1e-4).abs() < 1e-12);
        assert_eq!(r.deadline_hit_rate(), Some(0.0), "job 2's deadline was before finish");
        assert!((r.cache.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn percentiles_on_empty_report_are_zero() {
        let r = ServeReport {
            completed: vec![],
            rejected: vec![],
            cache: CacheStats::default(),
            makespan_s: 0.0,
            peak_queue_depth: 0,
            predictor_trainings: 0,
            resubmissions: 0,
            dispatch_groups: 0,
            device_attaches: 0,
            device_detaches: 0,
            timing_inconsistencies: 0,
            first_inconsistent_job: None,
            cache_snapshot: None,
        };
        assert_eq!(r.p99_latency_s(), 0.0);
        assert_eq!(r.p999_latency_s(), 0.0);
        assert_eq!(r.throughput_jobs_per_s(), 0.0);
        assert_eq!(r.mean_queue_wait_s(), 0.0);
        assert_eq!(r.mean_batch_occupancy(), 0.0);
        assert!(r.batch_occupancy_curve().is_empty());
        assert!(r.deadline_hit_rate().is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = report();
        let b = report();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = report();
        c.completed[3].finish_s += 1e-9;
        assert_ne!(a.fingerprint(), c.fingerprint(), "any clock change must show");
    }

    #[test]
    fn resilience_counters_show_in_fingerprint_and_render() {
        let base = report().fingerprint();
        let mut r = report();
        r.resubmissions = 2;
        r.timing_inconsistencies = 1;
        r.first_inconsistent_job = Some(3);
        assert_ne!(r.fingerprint(), base, "resilience counters must be fingerprinted");
        let s = r.render();
        assert!(s.contains("resubmissions 2"), "missing resubmissions in:\n{s}");
        assert!(s.contains("TIMING INCONSISTENCIES 1"), "missing inconsistency flag in:\n{s}");
        assert!(s.contains("device-failure 0"), "missing device-failure count in:\n{s}");
        assert_eq!(report().device_failure_rejections(), 0);
    }

    #[test]
    fn render_mentions_every_headline_metric() {
        let s = report().render();
        for needle in
            ["throughput", "p99", "p999", "hit rate", "queue-full", "peak queue depth", "batching"]
        {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn batch_and_autoscale_metrics_show_in_fingerprint_and_render() {
        let base = report().fingerprint();
        let mut r = report();
        // Recast records 0..5 as one fused group of 6.
        for rec in r.completed.iter_mut().take(6) {
            rec.group_size = 6;
            rec.timing.batch_wait_s = 1e-3;
        }
        r.dispatch_groups = 5;
        r.device_attaches = 2;
        r.device_detaches = 1;
        assert_ne!(r.fingerprint(), base, "batch/autoscale state must be fingerprinted");
        assert!((r.mean_batch_occupancy() - 2.0).abs() < 1e-12, "10 jobs over 5 groups");
        assert_eq!(r.batch_occupancy_curve(), vec![(1, 4), (6, 1)]);
        let s = r.render();
        assert!(s.contains("mean occupancy 2.00"), "missing occupancy in:\n{s}");
        assert!(s.contains("2 attaches, 1 detaches"), "missing autoscale line in:\n{s}");
    }

    #[test]
    fn rate_limited_rejections_are_counted() {
        let mut r = report();
        r.rejected.push(Rejected {
            job_id: 100,
            tenant: "t0".into(),
            reason: RejectReason::RateLimited { rate_jobs_per_s: 20.0 },
            retry_after_s: 0.05,
            arrival_s: 4.0,
        });
        assert_eq!(r.rate_limited_rejections(), 1);
        assert!(r.render().contains("rate-limited 1"));
    }
}
