//! Context-aware recommendation via CPD — the classic sparse-tensor
//! application the paper's introduction motivates (user × item × context
//! ratings, as in the FROSTT `uber`/`yelp` style datasets).
//!
//! Builds a synthetic ratings tensor with planted user/item communities,
//! decomposes it with CPD-ALS running every MTTKRP through ScalFrag on
//! the simulated GPU, and uses the factors to score unseen
//! (user, item, context) triples.
//!
//! Run with `cargo run --release --example recommender`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scalfrag::kernels::{cpd_als, CpdOptions};
use scalfrag::prelude::*;

const USERS: u32 = 600;
const ITEMS: u32 = 400;
const CONTEXTS: u32 = 8; // e.g. time-of-day buckets
const COMMUNITIES: usize = 4;

/// Synthesises ratings with planted structure: users and items belong to
/// communities; a user rates items of their own community higher, modulated
/// by context affinity.
fn build_ratings(seed: u64) -> (CooTensor, Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let user_comm: Vec<usize> = (0..USERS).map(|_| rng.gen_range(0..COMMUNITIES)).collect();
    let item_comm: Vec<usize> = (0..ITEMS).map(|_| rng.gen_range(0..COMMUNITIES)).collect();
    let ctx_affinity: Vec<Vec<f32>> =
        (0..COMMUNITIES).map(|_| (0..CONTEXTS).map(|_| 0.5 + rng.gen::<f32>()).collect()).collect();

    let mut t = CooTensor::new(&[USERS, ITEMS, CONTEXTS]);
    let mut seen = std::collections::HashSet::new();
    while t.nnz() < 40_000 {
        let u = rng.gen_range(0..USERS);
        let i = rng.gen_range(0..ITEMS);
        let c = rng.gen_range(0..CONTEXTS);
        if !seen.insert((u, i, c)) {
            continue;
        }
        let same = user_comm[u as usize] == item_comm[i as usize];
        let base = if same { 4.0 } else { 1.5 };
        let affinity = ctx_affinity[user_comm[u as usize]][c as usize];
        let noise: f32 = rng.gen::<f32>() * 0.5;
        t.push(&[u, i, c], base * affinity + noise);
    }
    (t, user_comm, item_comm)
}

/// Predicted rating from the CPD factors: `Σ_f A(u,f) B(i,f) C(c,f)`.
fn predict(f: &FactorSet, u: u32, i: u32, c: u32) -> f32 {
    (0..f.rank())
        .map(|r| f.get(0)[(u as usize, r)] * f.get(1)[(i as usize, r)] * f.get(2)[(c as usize, r)])
        .sum()
}

fn main() {
    let (ratings, user_comm, item_comm) = build_ratings(99);
    println!(
        "ratings tensor: {} users x {} items x {} contexts, {} observed ratings",
        USERS,
        ITEMS,
        CONTEXTS,
        ratings.nnz()
    );

    // Decompose with CPD-ALS; every MTTKRP runs through the full ScalFrag
    // stack on the simulated RTX 3090.
    let ctx = ScalFrag::builder().build();
    let mut backend = ctx.backend();
    let opts = CpdOptions {
        rank: COMMUNITIES + 2,
        max_iters: 15,
        tol: 1e-4,
        seed: 11,
        nonnegative: false,
    };
    println!("\nrunning CPD-ALS (rank {}) through ScalFrag...", opts.rank);
    let cpd = cpd_als(&ratings, &opts, &mut backend);
    println!(
        "converged after {} sweeps, fit {:.4}, simulated GPU time {:.2} ms",
        cpd.iters,
        cpd.final_fit(),
        backend.simulated_seconds * 1e3
    );

    // Recommendation sanity check: same-community items should score higher
    // for a user than cross-community items, on average.
    let f = &cpd.factors;
    let mut same_sum = 0.0f64;
    let mut cross_sum = 0.0f64;
    let mut same_n = 0u32;
    let mut cross_n = 0u32;
    for u in (0..USERS).step_by(7) {
        for i in (0..ITEMS).step_by(5) {
            let score = predict(f, u, i, 0) as f64;
            if user_comm[u as usize] == item_comm[i as usize] {
                same_sum += score;
                same_n += 1;
            } else {
                cross_sum += score;
                cross_n += 1;
            }
        }
    }
    let same_avg = same_sum / same_n as f64;
    let cross_avg = cross_sum / cross_n as f64;
    println!("\nmean predicted score, same-community pairs : {same_avg:.3}");
    println!("mean predicted score, cross-community pairs: {cross_avg:.3}");
    println!(
        "community lift: {:.2}x {}",
        same_avg / cross_avg,
        if same_avg > cross_avg { "(planted structure recovered)" } else { "(!!)" }
    );

    // Top-5 items for one user in their preferred context.
    let user = 3u32;
    let mut scored: Vec<(u32, f32)> = (0..ITEMS).map(|i| (i, predict(f, user, i, 1))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 recommendations for user {user} in context 1:");
    for (item, score) in &scored[..5] {
        println!("  item {item:>4} (community {}) score {score:.3}", item_comm[*item as usize]);
    }
}
