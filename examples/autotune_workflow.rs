//! The adaptive launching workflow of §IV-B / Fig. 7, end to end:
//! generate tensors → sweep MTTKRP → train the model zoo → evaluate →
//! persist the winning tree → predict configurations for fresh tensors.
//!
//! Run with `cargo run --release --example autotune_workflow`.

use scalfrag::autotune::persist::{load_tree, save_tree};
use scalfrag::autotune::sweep::{sweep_tensor, KernelFlavor};
use scalfrag::autotune::trainer::{generate_corpus, select_config, train_and_evaluate};
use scalfrag::autotune::{DecisionTree, LaunchPredictor, Regressor};
use scalfrag::gpusim::DeviceSpec;
use scalfrag::prelude::*;

fn main() {
    let device = DeviceSpec::rtx3090();
    let space = LaunchConfig::coarse_sweep_space(&device);
    let rank = 16u32;

    // --- Offline: generate + sweep + train (Fig. 7, left half). ---
    println!("generating the training corpus and sweeping the launch space...");
    let tiers = [5_000usize, 25_000, 100_000, 400_000];
    let train = generate_corpus(&device, rank, &space, &tiers, 1);
    let test = generate_corpus(&device, rank, &space, &[12_000, 200_000], 2);
    println!("  {} training tensor-mode pairs, {} held-out pairs", train.len(), test.len());

    println!("\ntraining the model zoo (DecisionTree / Bagging / AdaBoost / kNN / Ridge)...");
    let trained = train_and_evaluate(&train, &test, &space);
    println!(
        "  {:<13} {:>10} {:>8} {:>9} {:>10} {:>14}",
        "model", "MAPE(time)", "R2(log)", "train", "select", "t(sel)/t(opt)"
    );
    for e in &trained.evals {
        println!(
            "  {:<13} {:>9.1}% {:>8.3} {:>8.3}s {:>8.0}µs {:>14.3}",
            e.name, e.mape_time, e.r2_log, e.train_time_s, e.select_time_us, e.selection_ratio
        );
    }

    // --- Persist the tree (ships with a deployment). ---
    let mut file = Vec::new();
    let tree_idx = trained.evals.iter().position(|e| e.name == "DecisionTree").unwrap();
    // Re-fit a standalone tree for persistence (the zoo boxes erase types).
    let (x, y) = scalfrag::autotune::trainer::to_samples(&train);
    let mut tree = DecisionTree::default_params();
    tree.fit(&x, &y);
    save_tree(&tree, &mut file).unwrap();
    println!(
        "\npersisted the DecisionTree ({} nodes, {} bytes); zoo MAPE was {:.1}%",
        tree.nodes().len(),
        file.len(),
        trained.evals[tree_idx].mape_time
    );
    let restored = load_tree(file.as_slice()).unwrap();

    // --- Online: predict configurations for fresh tensors (right half). ---
    let predictor =
        LaunchPredictor::from_model(Box::new(restored), LaunchConfig::sweep_space(&device), rank);
    println!("\nonline predictions on unseen tensors:");
    let fresh = [
        ("small uniform", scalfrag::tensor::gen::uniform(&[300, 200, 150], 8_000, 71)),
        ("large uniform", scalfrag::tensor::gen::uniform(&[4_000, 3_000, 1_500], 500_000, 72)),
        (
            "large skewed",
            scalfrag::tensor::gen::zipf_slices(&[2_000, 5_000, 2_000], 300_000, 1.1, 73),
        ),
    ];
    let full_space = LaunchConfig::sweep_space(&device);
    for (label, t) in &fresh {
        let cfg = predictor.predict(t, 0);
        let sweep = sweep_tensor(&device, KernelFlavor::Tiled, t, 0, rank, &full_space);
        let t_sel =
            sweep.entries.iter().find(|(c, _)| *c == cfg).map(|&(_, s)| s).unwrap_or(f64::INFINITY);
        let (best_cfg, t_best) = sweep.best();
        println!(
            "  {label:<14} ({:>7} nnz): predicted {cfg} -> {:.1}µs (optimum {best_cfg} -> {:.1}µs, ratio {:.2})",
            t.nnz(),
            t_sel * 1e6,
            t_best * 1e6,
            t_sel / t_best
        );
    }

    // The same machinery, one call: select_config on the boxed best model.
    let best = trained.best();
    let cfg = select_config(best, &test[0].features, &space);
    println!(
        "\nbest zoo model ({}) would launch the first held-out tensor with {cfg}",
        best.name()
    );
}
