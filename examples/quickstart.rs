//! Quickstart: sparse MTTKRP and CPD on a simulated RTX 3090 in ~40 lines.
//!
//! Run with `cargo run --release --example quickstart`.

use scalfrag::kernels::{cpd_als, CpdOptions};
use scalfrag::prelude::*;

fn main() {
    // 1. A sparse 3-way tensor. Real FROSTT `.tns` files load through
    //    `scalfrag::tensor::io::read_tns_file`; here we synthesise one with
    //    a heavy-tailed slice distribution (web-data-like).
    let dims = [3_000u32, 2_000, 1_200];
    let tensor = scalfrag::tensor::gen::zipf_slices(&dims, 400_000, 1.0, 7);
    println!(
        "tensor: {:?} with {} non-zeros (density {:.2e})",
        tensor.dims(),
        tensor.nnz(),
        tensor.density()
    );

    // 2. Rank-16 factor matrices.
    let factors = FactorSet::random(tensor.dims(), 16, 42);

    // 3. One end-to-end MTTKRP through the full ScalFrag stack: the
    //    adaptive launching strategy picks <<<grid, block>>> from the
    //    tensor's features, the tensor is segmented and pipelined over
    //    CUDA-style streams, and the tiled kernel runs per segment.
    let ctx = ScalFrag::builder().build();
    println!("\ntraining the launch predictor (one-off) and running MTTKRP...");
    let report = ctx.mttkrp(&tensor, &factors, 0);
    println!("{}", report.summary());

    // 4. The same through the ParTI baseline for comparison.
    let parti = Parti::rtx3090();
    let baseline = parti.mttkrp(&tensor, &factors, 0);
    println!("{}", baseline.summary());
    println!(
        "end-to-end speedup over ParTI: {:.2}x",
        baseline.timing.total_s / report.timing.total_s
    );

    // Numeric outputs agree (both are real computations).
    let diff = report.output.max_abs_diff(&baseline.output);
    println!("max |ScalFrag - ParTI| over the output matrix: {diff:.2e}");

    // 5. Full CPD-ALS (Algorithm 1) with ScalFrag computing every MTTKRP.
    let mut backend = ctx.backend();
    let opts = CpdOptions { rank: 8, max_iters: 5, tol: 1e-4, seed: 1, nonnegative: false };
    let cpd = cpd_als(&tensor, &opts, &mut backend);
    println!(
        "\nCPD-ALS: {} sweeps, fit {:.4}, simulated device time {:.3} ms",
        cpd.iters,
        cpd.final_fit(),
        backend.simulated_seconds * 1e3
    );
    println!("(a random tensor has no low-rank structure, so a small fit is expected;");
    println!(" see examples/recommender.rs for CPD recovering planted structure)");
}
