//! Hardware sensitivity: the same tensors on three simulated devices
//! (RTX 3060-class, the paper's RTX 3090, A100-class), showing that the
//! adaptive launching strategy adapts to the *hardware* as well as the
//! tensor — the paper's §III-A point that "the hardware environments may
//! also have significant differences … which make it impossible to simply
//! apply a fixed set of parameter configurations".
//!
//! Run with `cargo run --release --example hardware_sensitivity`.

use scalfrag::autotune::LaunchPredictor;
use scalfrag::gpusim::DeviceSpec;
use scalfrag::prelude::*;

fn main() {
    let devices = [DeviceSpec::rtx3060(), DeviceSpec::rtx3090(), DeviceSpec::a100()];
    let tensors = [
        ("small-uniform", scalfrag::tensor::gen::uniform(&[400, 300, 200], 25_000, 1)),
        (
            "large-skewed",
            scalfrag::tensor::gen::zipf_slices(&[3_000, 2_000, 1_200], 600_000, 1.0, 2),
        ),
    ];
    let rank = 16u32;
    let tiers = [10_000usize, 60_000, 300_000, 800_000];

    println!("Per-device adaptive launch selections (rank {rank}):\n");
    println!("{:<26} {:>14} {:>22} {:>14}", "device", "tensor", "chosen launch", "kernel time");
    for d in &devices {
        // One predictor per device — the offline phase is hardware-specific,
        // exactly as the paper's training on the deployment GPU is.
        let p = LaunchPredictor::train_with_tiers(d, rank, 7, &tiers);
        for (name, t) in &tensors {
            let cfg = p.predict(t, 0);
            let stats = scalfrag::kernels::SegmentStats::compute(t, 0);
            let dur = scalfrag::autotune::sweep::KernelFlavor::Tiled.duration(d, &stats, rank, cfg);
            println!("{:<26} {:>14} {:>22} {:>12.1}µs", d.name, name, format!("{cfg}"), dur * 1e6);
        }
    }

    println!("\nEnd-to-end ScalFrag vs ParTI across devices (large-skewed tensor):");
    let (_, t) = &tensors[1];
    let f = FactorSet::random(t.dims(), rank as usize, 3);
    for d in &devices {
        let parti = Parti::new(d.clone());
        let rp = parti.mttkrp_dry(t, &f, 0);
        let scal = ScalFrag::builder().device(d.clone()).train_tiers(tiers.to_vec()).build();
        let rs = scal.mttkrp_dry(t, &f, 0);
        println!(
            "  {:<26} ParTI {:>9.3}ms | ScalFrag {:>9.3}ms | speedup {:.2}x",
            d.name,
            rp.timing.total_s * 1e3,
            rs.timing.total_s * 1e3,
            rp.timing.total_s / rs.timing.total_s
        );
    }
    println!("\nReading: faster memory (A100) shrinks kernel time, so the pipeline");
    println!("becomes transfer-bound and the speedup shifts; slower parts (3060)");
    println!("are kernel-bound and gain most from the tiled kernel itself.");
}
