//! Visualising the pipelined parallelism of §IV-C: how segmented transfers
//! overlap with kernels across CUDA-style streams, and what that does to
//! the end-to-end MTTKRP time (the mechanism behind Fig. 10 and Fig. 11).
//!
//! Run with `cargo run --release --example pipeline_overlap`.

use scalfrag::exec::ExecMode;
use scalfrag::gpusim::{DeviceSpec, Gpu};
use scalfrag::kernels::FactorSet;
use scalfrag::pipeline::{execute_pipelined, execute_sync, KernelChoice, PipelinePlan};
use scalfrag::prelude::*;

fn main() {
    // A flickr-like tensor: heavy-tailed slices, ~1.8 M non-zeros.
    let preset = scalfrag::tensor::frostt::by_name("flickr-3d").unwrap();
    let mut tensor = preset.materialize(64);
    tensor.sort_for_mode(0);
    let factors = FactorSet::random(tensor.dims(), 16, 5);
    println!("tensor: {} ({} nnz), factors rank {}\n", preset.name, tensor.nnz(), factors.rank());
    let cfg = LaunchConfig::new(4096, 256);

    // --- The ParTI-style synchronous schedule (§III-B). ---
    let mut gpu = Gpu::new(DeviceSpec::rtx3090());
    let sync =
        execute_sync(&mut gpu, &tensor, &factors, 0, cfg, KernelChoice::Tiled, ExecMode::Dry);
    println!("synchronous schedule ({}):", scalfrag_fmt(sync.makespan()));
    println!("{}", sync.timeline.ascii_gantt(90));

    // --- The ScalFrag pipeline: 4 segments on 4 streams. ---
    let plan = PipelinePlan::new(&tensor, 0, cfg, 4, 4);
    let mut gpu = Gpu::new(DeviceSpec::rtx3090());
    let piped =
        execute_pipelined(&mut gpu, &tensor, &factors, &plan, KernelChoice::Tiled, ExecMode::Dry);
    println!(
        "pipelined schedule, {} segments / {} streams ({}; overlap {:.0}%):",
        plan.num_segments(),
        plan.num_streams,
        scalfrag_fmt(piped.makespan()),
        piped.overlap_ratio() * 100.0
    );
    println!("{}", piped.timeline.ascii_gantt(90));
    println!("speedup over the synchronous schedule: {:.2}x\n", sync.makespan() / piped.makespan());

    // --- The Fig. 11 sensitivity in one loop. ---
    println!("segments x streams sensitivity (end-to-end time):");
    print!("{:>10}", "segs\\strm");
    for streams in [1usize, 2, 4, 8] {
        print!("{streams:>11}");
    }
    println!();
    for segments in [1usize, 2, 4, 8, 16] {
        print!("{segments:>10}");
        for streams in [1usize, 2, 4, 8] {
            let plan = PipelinePlan::new(&tensor, 0, cfg, segments, streams);
            let mut gpu = Gpu::new(DeviceSpec::rtx3090());
            let run = execute_pipelined(
                &mut gpu,
                &tensor,
                &factors,
                &plan,
                KernelChoice::Tiled,
                ExecMode::Dry,
            );
            print!("{:>11}", scalfrag_fmt(run.makespan()));
        }
        println!();
    }
    println!("\nReading: one segment/stream is serial; a few segments hide most of");
    println!("the transfer; many tiny segments re-pay the per-transfer latency.");
}

fn scalfrag_fmt(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.0}µs", seconds * 1e6)
    } else {
        format!("{:.2}ms", seconds * 1e3)
    }
}
