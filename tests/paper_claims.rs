//! Shape-level assertions of the paper's claims, on down-scaled stand-ins.
//! These are the automated counterparts of the figure harnesses in
//! `scalfrag-bench`: they check the *direction and rough magnitude* of each
//! result, not absolute numbers.

use scalfrag::autotune::sweep::{sweep_tensor, KernelFlavor};
use scalfrag::gpusim::DeviceSpec;
use scalfrag::prelude::*;
use std::sync::OnceLock;

fn flickr_like() -> &'static CooTensor {
    // Heavy-tailed web tensor, paper-scale slice occupancy. Shared across
    // tests (materialisation is the expensive part).
    static T: OnceLock<CooTensor> = OnceLock::new();
    T.get_or_init(|| scalfrag::tensor::frostt::by_name("flickr-3d").unwrap().materialize(128))
}

fn trained_scalfrag() -> &'static ScalFrag {
    // One predictor training shared by every test that needs the adaptive
    // launch (the paper trains once, too).
    static S: OnceLock<ScalFrag> = OnceLock::new();
    S.get_or_init(|| {
        ScalFrag::builder().train_tiers(vec![20_000, 100_000, 400_000, 1_000_000]).build()
    })
}

fn factors(t: &CooTensor) -> FactorSet {
    FactorSet::random(t.dims(), 16, 0xFAC7)
}

/// Fig. 4: the launch space must discriminate strongly and have an
/// interior optimum whose position depends on the tensor.
#[test]
fn fig4_shape_launch_space_discriminates() {
    let d = DeviceSpec::rtx3090();
    let space = LaunchConfig::sweep_space(&d);
    let small = scalfrag::tensor::gen::uniform(&[300, 200, 150], 15_000, 1);
    let large = scalfrag::tensor::gen::uniform(&[4_000, 3_000, 1_500], 900_000, 2);

    for t in [&small, &large] {
        let sweep = sweep_tensor(&d, KernelFlavor::CooAtomic, t, 0, 16, &space);
        let (_, best) = sweep.best();
        let (_, worst) = sweep.worst();
        assert!(worst / best > 3.0, "gap {} too small", worst / best);
    }
    let b_small = sweep_tensor(&d, KernelFlavor::CooAtomic, &small, 0, 16, &space).best().0;
    let b_large = sweep_tensor(&d, KernelFlavor::CooAtomic, &large, 0, 16, &space).best().0;
    assert_ne!(b_small, b_large, "optima must be tensor-dependent");
}

/// Fig. 5: H2D must be the dominant phase of the synchronous schedule for
/// transfer-heavy (large, hyper-sparse) tensors.
#[test]
fn fig5_shape_h2d_dominates_for_large_tensors() {
    let t = flickr_like();
    let f = factors(t);
    let r = Parti::rtx3090().mttkrp_dry(t, &f, 0);
    assert!(
        r.timing.h2d_s >= r.timing.kernel_s * 0.8,
        "H2D {} vs kernel {}",
        r.timing.h2d_s,
        r.timing.kernel_s
    );
    assert!(r.timing.h2d_s > 5.0 * r.timing.d2h_s);
    assert!(r.timing.h2d_fraction() > 0.4);
}

/// Fig. 9: the ScalFrag kernel strategy must beat ParTI's on both uniform
/// and skewed tensors, more on the skewed ones (atomic relief).
#[test]
fn fig9_shape_kernel_speedups() {
    let uniform = scalfrag::tensor::gen::uniform(&[3_000, 2_000, 1_000], 500_000, 3);
    let skewed = scalfrag::tensor::gen::zipf_slices(&[3_000, 2_000, 1_000], 500_000, 1.1, 4);
    let parti = Parti::rtx3090();
    let scal = trained_scalfrag();

    let mut speedups = Vec::new();
    for t in [&uniform, &skewed] {
        let f = factors(t);
        let rp = parti.mttkrp_dry(t, &f, 0);
        let rs = scal.mttkrp_dry(t, &f, 0);
        let s = rp.timing.kernel_s / rs.timing.kernel_s;
        assert!(s > 1.0, "ScalFrag kernel must win: {s}");
        speedups.push(s);
    }
    assert!(
        speedups[1] > speedups[0],
        "skewed speedup {} should exceed uniform {}",
        speedups[1],
        speedups[0]
    );
}

/// Fig. 10: the pipelined end-to-end path must beat the synchronous
/// baseline on a transfer-heavy tensor by a paper-like margin.
#[test]
fn fig10_shape_end_to_end_speedup() {
    let t = flickr_like();
    let f = factors(t);
    let parti = Parti::rtx3090();
    let scal = trained_scalfrag();
    let rp = parti.mttkrp_dry(t, &f, 0);
    let rs = scal.mttkrp_dry(t, &f, 0);
    let speedup = rp.timing.total_s / rs.timing.total_s;
    assert!(
        speedup > 1.15,
        "expected a paper-like e2e win, got {speedup}\n  parti {}\n  scal  {}",
        rp.summary(),
        rs.summary()
    );
    assert!(rs.overlap_ratio > 0.1, "pipelining must overlap phases");
}

/// Fig. 11: one segment is the worst setting; a moderate count recovers
/// most of the benefit; the marginal gain flattens.
#[test]
fn fig11_shape_segment_sensitivity() {
    let t = flickr_like();
    let f = factors(t);
    let time_with = |segments: usize| {
        let ctx = ScalFrag::builder()
            .fixed_config(LaunchConfig::new(4096, 256))
            .segments(segments)
            .streams(4.min(segments))
            .build();
        ctx.mttkrp_dry(t, &f, 0).timing.total_s
    };
    let t1 = time_with(1);
    let t4 = time_with(4);
    let t16 = time_with(16);
    assert!(t4 < t1, "4 segments must beat 1: {t4} vs {t1}");
    let gain_14 = t1 / t4;
    let gain_416 = t4 / t16;
    assert!(gain_416 < gain_14, "gains must flatten: 1->4 {gain_14}, 4->16 {gain_416}");
}

/// §IV-B: the adaptive launch must choose configurations close to the
/// sweep optimum for unseen tensors.
#[test]
fn adaptive_launch_selects_near_optimal_configs() {
    let d = DeviceSpec::rtx3090();
    let scal = trained_scalfrag();
    let space = LaunchConfig::sweep_space(&d);
    for (seed, nnz) in [(10u64, 40_000usize), (11, 300_000)] {
        let t = scalfrag::tensor::gen::zipf_slices(&[2_000, 1_500, 900], nnz, 0.9, seed);
        let cfg = scal.select_config(&t, 0, 16);
        let sweep = sweep_tensor(&d, KernelFlavor::Tiled, &t, 0, 16, &space);
        let stats = scalfrag::kernels::SegmentStats::compute(&t, 0);
        let t_sel = KernelFlavor::Tiled.duration(&d, &stats, 16, cfg);
        let (_, t_best) = sweep.best();
        assert!(
            t_sel / t_best < 1.8,
            "nnz {nnz}: selected {cfg} is {:.2}x off optimal",
            t_sel / t_best
        );
    }
}
