//! Failure-injection and resource-limit behaviour: device out-of-memory,
//! auto-segmentation under pressure, degenerate tensors, and hostile
//! configurations must fail loudly or adapt — never silently corrupt.

use scalfrag::gpusim::{DeviceSpec, Gpu, MemoryPool};
use scalfrag::prelude::*;

#[test]
fn memory_pool_rejects_oversubscription_exactly() {
    let pool = MemoryPool::new(1_000);
    let a = pool.alloc(999).unwrap();
    assert!(pool.alloc(2).is_err());
    let b = pool.alloc(1).unwrap();
    pool.free(a);
    pool.free(b);
    assert_eq!(pool.used(), 0);
    assert_eq!(pool.peak(), 1_000);
}

#[test]
fn auto_plan_segments_more_under_memory_pressure() {
    let mut t = scalfrag::tensor::gen::uniform(&[500, 400, 300], 100_000, 1);
    t.sort_for_mode(0);
    let cfg = LaunchConfig::new(1024, 256);

    let roomy = scalfrag::pipeline::PipelinePlan::auto(&t, 0, cfg, &DeviceSpec::rtx3090(), 1 << 20);

    let mut tiny = DeviceSpec::rtx3090();
    tiny.global_mem_bytes = (t.byte_size() / 8) as u64;
    let squeezed = scalfrag::pipeline::PipelinePlan::auto(&t, 0, cfg, &tiny, 0);
    assert!(
        squeezed.num_segments() > roomy.num_segments(),
        "pressure {} vs roomy {}",
        squeezed.num_segments(),
        roomy.num_segments()
    );
}

#[test]
#[should_panic(expected = "OutOfMemory")]
fn sync_execution_panics_when_the_tensor_cannot_fit() {
    let t = scalfrag::tensor::gen::uniform(&[100, 100, 100], 20_000, 2);
    let f = FactorSet::random(t.dims(), 8, 3);
    let mut spec = DeviceSpec::rtx3090();
    spec.global_mem_bytes = 1_000; // absurdly small device
    let mut gpu = Gpu::new(spec);
    let _ = scalfrag::pipeline::execute_sync(
        &mut gpu,
        &t,
        &f,
        0,
        LaunchConfig::new(256, 128),
        scalfrag::pipeline::KernelChoice::Tiled,
        ExecMode::Functional,
    );
}

#[test]
fn single_entry_tensor_works_end_to_end() {
    let t = CooTensor::from_entries(&[4, 4, 4], &[(vec![1, 2, 3], 5.0)]);
    let f = FactorSet::random(t.dims(), 4, 4);
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(32, 32)).build();
    let r = ctx.mttkrp(&t, &f, 0);
    let expect = scalfrag::kernels::reference::mttkrp_seq(&t, &f, 0);
    assert!(r.output.max_abs_diff(&expect) < 1e-4);
}

#[test]
fn requesting_more_segments_than_slices_degrades_gracefully() {
    // Only 3 distinct slices, 16 segments requested: the plan clamps.
    let mut entries = Vec::new();
    for j in 0..30u32 {
        entries.push((vec![j % 3, j, 0], 1.0f32));
    }
    let mut t = CooTensor::from_entries(&[3, 30, 2], &entries);
    t.sort_for_mode(0);
    let plan = scalfrag::pipeline::PipelinePlan::new(&t, 0, LaunchConfig::new(64, 64), 16, 16);
    assert!(plan.num_segments() <= 3);
    assert_eq!(plan.total_nnz(), 30);
}

#[test]
fn zero_value_entries_flow_through() {
    let mut t = CooTensor::new(&[8, 8, 8]);
    t.push(&[1, 1, 1], 0.0);
    t.push(&[2, 2, 2], 3.0);
    let f = FactorSet::random(t.dims(), 4, 5);
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(32, 32)).build();
    let r = ctx.mttkrp(&t, &f, 1);
    let expect = scalfrag::kernels::reference::mttkrp_seq(&t, &f, 1);
    assert!(r.output.max_abs_diff(&expect) < 1e-4);
}

#[test]
fn pathological_rank_one_still_works() {
    let t = scalfrag::tensor::gen::uniform(&[20, 20, 20], 500, 6);
    let f = FactorSet::random(t.dims(), 1, 7);
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(64, 32)).build();
    let r = ctx.mttkrp(&t, &f, 2);
    let expect = scalfrag::kernels::reference::mttkrp_seq(&t, &f, 2);
    assert!(r.output.max_abs_diff(&expect) < 1e-3);
}

#[test]
fn hybrid_with_everything_on_cpu_matches() {
    // Threshold above every slice population: the GPU part is empty.
    let t = scalfrag::tensor::gen::uniform(&[50, 40, 30], 2_000, 8);
    let f = FactorSet::random(t.dims(), 4, 9);
    let split = scalfrag::pipeline::split_by_slice_population(&t, 0, u32::MAX);
    assert_eq!(split.gpu_part.nnz(), 0);
    let mut gpu = Gpu::new(DeviceSpec::rtx3090());
    let run = scalfrag::pipeline::execute_hybrid(
        &mut gpu,
        &split,
        &f,
        0,
        LaunchConfig::new(64, 64),
        2,
        2,
        scalfrag::pipeline::KernelChoice::Tiled,
        ExecMode::Functional,
    );
    let expect = scalfrag::kernels::reference::mttkrp_seq(&t, &f, 0);
    assert!(run.output.max_abs_diff(&expect) < 1e-3);
}
