//! Determinism: the simulator, generators and frameworks must be exactly
//! reproducible — a requirement for trustworthy benchmarking.

use scalfrag::prelude::*;

#[test]
fn dataset_presets_are_reproducible() {
    for p in scalfrag::tensor::frostt::all_presets() {
        let a = p.materialize(4096);
        let b = p.materialize(4096);
        assert_eq!(a, b, "{} not reproducible", p.name);
    }
}

#[test]
fn simulated_timings_are_bit_identical_across_runs() {
    let t = scalfrag::tensor::gen::zipf_slices(&[400, 300, 200], 20_000, 0.9, 5);
    let f = FactorSet::random(t.dims(), 16, 6);
    let run = || {
        let ctx =
            ScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).segments(4).build();
        let r = ctx.mttkrp_dry(&t, &f, 0);
        (r.timing.h2d_s, r.timing.kernel_s, r.timing.d2h_s, r.timing.total_s, r.overlap_ratio)
    };
    assert_eq!(run(), run());

    let parti = || {
        let p = Parti::rtx3090();
        p.mttkrp_dry(&t, &f, 0).timing.total_s
    };
    assert_eq!(parti(), parti());
}

#[test]
fn functional_outputs_are_deterministic_up_to_float_reassociation() {
    // The atomic-buffer kernels race on addition order, so bit-exactness is
    // not guaranteed — but results must agree tightly across runs.
    let t = scalfrag::tensor::gen::uniform(&[150, 100, 80], 10_000, 7);
    let f = FactorSet::random(t.dims(), 8, 8);
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(512, 128)).build();
    let a = ctx.mttkrp(&t, &f, 0).output;
    let b = ctx.mttkrp(&t, &f, 0).output;
    assert!(a.max_abs_diff(&b) < 1e-3);
}

#[test]
fn trained_predictor_is_deterministic() {
    let d = scalfrag::gpusim::DeviceSpec::rtx3090();
    let p1 = scalfrag::autotune::LaunchPredictor::train_with_tiers(&d, 16, 3, &[5_000, 20_000]);
    let p2 = scalfrag::autotune::LaunchPredictor::train_with_tiers(&d, 16, 3, &[5_000, 20_000]);
    let t = scalfrag::tensor::gen::uniform(&[500, 300, 200], 15_000, 9);
    assert_eq!(p1.predict(&t, 0), p2.predict(&t, 0));
}

#[test]
fn multi_gpu_timelines_are_bit_identical_across_runs() {
    use scalfrag::cluster::NodeSpec;
    let t = scalfrag::tensor::gen::zipf_slices(&[400, 300, 200], 20_000, 0.9, 5);
    let f = FactorSet::random(t.dims(), 16, 6);
    let run = || {
        let ctx = ClusterScalFrag::builder()
            .node(NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]))
            .fixed_config(LaunchConfig::new(1024, 256))
            .shards(4)
            .build();
        let r = ctx.mttkrp_dry(&t, &f, 0);
        (r.per_device.clone(), r.assignments.clone(), r.reduction_s, r.total_s)
    };
    assert_eq!(run(), run());
    // The parallel runtime is now a real work-stealing pool, so the old
    // "exactly one worker by construction" assumption is gone. What holds
    // instead — and what matters — is thread-count invariance: the
    // simulated schedule is a pure function of the plan, not of how many
    // workers happened to execute it.
    scalfrag::host::check::assert_thread_invariant("cluster-dry-timeline", || {
        let (per_device, assignments, reduction_s, total_s) = run();
        (per_device, assignments, reduction_s.to_bits(), total_s.to_bits())
    });
}

#[test]
fn feature_extraction_is_deterministic() {
    let t = scalfrag::tensor::gen::blocked(&[256, 256, 256], 8_000, 16, 16, 11);
    let a = TensorFeatures::extract(&t, 0).to_vec();
    let b = TensorFeatures::extract(&t, 0).to_vec();
    assert_eq!(a, b);
}

/// The tentpole property: every registered kernel format produces
/// **bit-identical** output at pool sizes 1/2/4/8. The inner loops fan
/// out across the work-stealing pool, but per-unit partials fold in
/// submission order, so the add sequence — and therefore every output
/// bit — is a function of the unit decomposition alone.
#[test]
fn kernel_formats_are_bit_identical_across_pool_sizes() {
    use scalfrag::conformance::kernel_backends;
    let backends = kernel_backends();
    assert!(backends.len() >= 6, "expected the six kernel formats, got {}", backends.len());
    // Zipf skew forces uneven units (steal-heavy schedules) and large
    // per-row populations (order-sensitive f32 sums).
    let t = scalfrag::tensor::gen::zipf_slices(&[48, 32, 24], 4_000, 1.3, 21);
    let f = FactorSet::random(t.dims(), 16, 22);
    for b in &backends {
        for mode in 0..3 {
            scalfrag::host::check::assert_thread_invariant(
                &format!("{} mode {mode}", b.name),
                || {
                    (b.run)(&t, &f, mode)
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<u32>>()
                },
            );
        }
    }
}

/// Same property one layer up: every registered plan builder, executed
/// functionally through the ScheduleIR interpreter, lands bit-identical
/// output *and* an identical plan-trace fingerprint at every pool size.
#[test]
fn plan_builders_are_bit_identical_across_pool_sizes() {
    use scalfrag::conformance::all_plan_builders;
    let t = scalfrag::tensor::gen::zipf_slices(&[40, 30, 20], 3_000, 1.1, 23);
    let f = FactorSet::random(t.dims(), 8, 24);
    let builders = all_plan_builders();
    assert!(builders.len() >= 6, "expected ≥6 plan builders, got {}", builders.len());
    for b in &builders {
        scalfrag::host::check::assert_thread_invariant(&format!("plan:{}", b.name), || {
            let plan = (b.build)(&t, &f, 0);
            let run = run_plan(&plan, ExecMode::Functional);
            let bits: Vec<u32> = run.output.as_slice().iter().map(|v| v.to_bits()).collect();
            (bits, run.trace.fingerprint())
        });
    }
}
