//! Determinism: the simulator, generators and frameworks must be exactly
//! reproducible — a requirement for trustworthy benchmarking.

use scalfrag::prelude::*;

#[test]
fn dataset_presets_are_reproducible() {
    for p in scalfrag::tensor::frostt::all_presets() {
        let a = p.materialize(4096);
        let b = p.materialize(4096);
        assert_eq!(a, b, "{} not reproducible", p.name);
    }
}

#[test]
fn simulated_timings_are_bit_identical_across_runs() {
    let t = scalfrag::tensor::gen::zipf_slices(&[400, 300, 200], 20_000, 0.9, 5);
    let f = FactorSet::random(t.dims(), 16, 6);
    let run = || {
        let ctx =
            ScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).segments(4).build();
        let r = ctx.mttkrp_dry(&t, &f, 0);
        (r.timing.h2d_s, r.timing.kernel_s, r.timing.d2h_s, r.timing.total_s, r.overlap_ratio)
    };
    assert_eq!(run(), run());

    let parti = || {
        let p = Parti::rtx3090();
        p.mttkrp_dry(&t, &f, 0).timing.total_s
    };
    assert_eq!(parti(), parti());
}

#[test]
fn functional_outputs_are_deterministic_up_to_float_reassociation() {
    // The atomic-buffer kernels race on addition order, so bit-exactness is
    // not guaranteed — but results must agree tightly across runs.
    let t = scalfrag::tensor::gen::uniform(&[150, 100, 80], 10_000, 7);
    let f = FactorSet::random(t.dims(), 8, 8);
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(512, 128)).build();
    let a = ctx.mttkrp(&t, &f, 0).output;
    let b = ctx.mttkrp(&t, &f, 0).output;
    assert!(a.max_abs_diff(&b) < 1e-3);
}

#[test]
fn trained_predictor_is_deterministic() {
    let d = scalfrag::gpusim::DeviceSpec::rtx3090();
    let p1 = scalfrag::autotune::LaunchPredictor::train_with_tiers(&d, 16, 3, &[5_000, 20_000]);
    let p2 = scalfrag::autotune::LaunchPredictor::train_with_tiers(&d, 16, 3, &[5_000, 20_000]);
    let t = scalfrag::tensor::gen::uniform(&[500, 300, 200], 15_000, 9);
    assert_eq!(p1.predict(&t, 0), p2.predict(&t, 0));
}

#[test]
fn multi_gpu_timelines_are_bit_identical_across_runs() {
    use scalfrag::cluster::NodeSpec;
    let t = scalfrag::tensor::gen::zipf_slices(&[400, 300, 200], 20_000, 0.9, 5);
    let f = FactorSet::random(t.dims(), 16, 6);
    let run = || {
        let ctx = ClusterScalFrag::builder()
            .node(NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]))
            .fixed_config(LaunchConfig::new(1024, 256))
            .shards(4)
            .build();
        let r = ctx.mttkrp_dry(&t, &f, 0);
        (r.per_device.clone(), r.assignments.clone(), r.reduction_s, r.total_s)
    };
    assert_eq!(run(), run());
    // The parallel runtime is the sequential rayon shim, so the simulated
    // schedule cannot depend on a worker-thread count: there is exactly
    // one, by construction (see shims/README.md).
    assert_eq!(rayon::current_num_threads(), 1);
}

#[test]
fn feature_extraction_is_deterministic() {
    let t = scalfrag::tensor::gen::blocked(&[256, 256, 256], 8_000, 16, 16, 11);
    let a = TensorFeatures::extract(&t, 0).to_vec();
    let b = TensorFeatures::extract(&t, 0).to_vec();
    assert_eq!(a, b);
}
