//! Multi-GPU integration: an N-device cluster MTTKRP must agree with the
//! single-GPU stack and the CPU reference — bitwise where the design
//! promises it.
//!
//! The bitwise claims lean on two facts: the rayon shim executes
//! sequentially (entry-order adds, like `mttkrp_seq`), and the cluster
//! executor keeps partial outputs per *shard* and folds them in shard
//! order, independent of device count and scheduler.

use scalfrag::cluster::{shard_tensor, DeviceScheduler, NodeSpec, ShardPolicy};
use scalfrag::kernels::reference::mttkrp_seq;
use scalfrag::prelude::*;

/// One 3-way and one 4-way test tensor with rank-8 factors.
fn cases() -> Vec<(CooTensor, FactorSet)> {
    let t3 = scalfrag::tensor::gen::zipf_slices(&[120, 90, 70], 9_000, 0.8, 31);
    let f3 = FactorSet::random(t3.dims(), 8, 32);
    let t4 = scalfrag::tensor::gen::uniform(&[40, 30, 25, 20], 6_000, 33);
    let f4 = FactorSet::random(t4.dims(), 8, 34);
    vec![(t3, f3), (t4, f4)]
}

fn cluster(n: usize, policy: ShardPolicy) -> ClusterScalFrag {
    ClusterScalFrag::builder()
        .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), n))
        .fixed_config(LaunchConfig::new(512, 256))
        // Fixed shard count: the precondition for bitwise stability
        // across device counts.
        .shards(4)
        .shard_policy(policy)
        // The atomic COO kernel accumulates in entry order under the
        // sequential rayon shim — the bitwise-comparable configuration.
        .tiled_kernel(false)
        .build()
}

#[test]
fn slice_aligned_cluster_bit_matches_cpu_reference() {
    for (t, f) in cases() {
        for mode in 0..t.order() {
            let mut sorted = t.clone();
            sorted.sort_for_mode(mode);
            let expect = mttkrp_seq(&sorted, &f, mode);
            for n in [1usize, 2, 4] {
                let r = cluster(n, ShardPolicy::SliceAligned).mttkrp(&t, &f, mode);
                assert_eq!(
                    r.output.as_slice(),
                    expect.as_slice(),
                    "order-{} mode-{mode} N={n} must bit-match the reference",
                    t.order()
                );
            }
        }
    }
}

#[test]
fn nnz_balanced_cluster_bit_matches_shard_folded_reference() {
    for (t, f) in cases() {
        let mode = 0;
        let mut sorted = t.clone();
        sorted.sort_for_mode(mode);
        // Reference built exactly as the executor folds: per-shard
        // sequential MTTKRP partials, summed in shard-index order.
        let shards = shard_tensor(&sorted, mode, ShardPolicy::NnzBalanced, 4);
        let mut expect = Mat::zeros(t.dims()[mode] as usize, f.rank());
        for s in &shards {
            expect.axpy(1.0, &mttkrp_seq(&s.tensor, &f, mode));
        }
        for n in [1usize, 2, 4] {
            let r = cluster(n, ShardPolicy::NnzBalanced).mttkrp(&t, &f, mode);
            assert_eq!(
                r.output.as_slice(),
                expect.as_slice(),
                "order-{} N={n} must bit-match the shard-folded reference",
                t.order()
            );
            // And the shard-folded reference itself is the true MTTKRP up
            // to reassociation.
            assert!(r.output.max_abs_diff(&mttkrp_seq(&sorted, &f, mode)) < 1e-3);
        }
    }
}

#[test]
fn schedulers_move_work_but_not_bits() {
    // Rank 64 is compute-bound, where LPT visibly tilts work toward the
    // 3090 instead of mirroring round-robin's even split.
    let (t, _) = cases().remove(0);
    let f = FactorSet::random(t.dims(), 64, 35);
    let out = |sched: DeviceScheduler| {
        ClusterScalFrag::builder()
            .node(NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]))
            .fixed_config(LaunchConfig::new(512, 256))
            .shards(8)
            .tiled_kernel(false)
            .scheduler(sched)
            .build()
            .mttkrp(&t, &f, 0)
    };
    let rr = out(DeviceScheduler::RoundRobin);
    let lpt = out(DeviceScheduler::Lpt);
    assert_eq!(rr.output.as_slice(), lpt.output.as_slice());
    assert_ne!(rr.assignments, lpt.assignments, "schedulers should differ on 3090+3060");
    assert!(
        lpt.total_s < rr.total_s,
        "LPT ({}s) should beat round-robin ({}s) on a heterogeneous node",
        lpt.total_s,
        rr.total_s
    );
}

#[test]
fn tiled_cluster_matches_cpu_reference_within_tolerance() {
    // The tiled kernel's windowed flushes reassociate additions, so the
    // production configuration is checked with a tolerance instead.
    for (t, f) in cases() {
        let expect = mttkrp_seq(&t, &f, 0);
        for policy in [ShardPolicy::SliceAligned, ShardPolicy::NnzBalanced] {
            let r = ClusterScalFrag::builder()
                .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4))
                .fixed_config(LaunchConfig::new(512, 256))
                .shard_policy(policy)
                .build()
                .mttkrp(&t, &f, 0);
            assert!(
                r.output.max_abs_diff(&expect) < 1e-2,
                "{policy:?}: diff {}",
                r.output.max_abs_diff(&expect)
            );
        }
    }
}

#[test]
fn cluster_agrees_with_single_gpu_scalfrag() {
    let (t, f) = cases().remove(0);
    let single =
        ScalFrag::builder().fixed_config(LaunchConfig::new(512, 256)).build().mttkrp(&t, &f, 0);
    let multi = ClusterScalFrag::builder()
        .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2))
        .fixed_config(LaunchConfig::new(512, 256))
        .build()
        .mttkrp(&t, &f, 0);
    assert!(single.output.max_abs_diff(&multi.output) < 1e-3);
}
