//! Integration coverage of the secondary formats (F-COO, HiCOO), SpTTM,
//! slice reordering and the tooling layer (profiler, Chrome trace) through
//! the facade crate.

use scalfrag::gpusim::{profiler, trace, DeviceSpec, Gpu};
use scalfrag::kernels::reference::mttkrp_seq;
use scalfrag::kernels::{spttm, AtomicF32Buffer, FCooKernel, HiCooKernel};
use scalfrag::prelude::*;
use scalfrag::tensor::reorder::SliceOrder;
use scalfrag::tensor::{FCooTensor, HiCooTensor};

fn tensor() -> CooTensor {
    scalfrag::tensor::gen::zipf_slices(&[120, 90, 60], 6_000, 1.0, 77)
}

#[test]
fn every_kernel_family_agrees_on_the_same_tensor() {
    let t = tensor();
    let f = FactorSet::random(t.dims(), 8, 78);
    let expect = mttkrp_seq(&t, &f, 0);
    let rank = f.rank();
    let rows = t.dims()[0] as usize;

    // F-COO.
    let fcoo = FCooTensor::from_coo(&t, 0, 256);
    let out = AtomicF32Buffer::new(rows * rank);
    FCooKernel::execute(&fcoo, &f, &out);
    let m = Mat::from_vec(rows, rank, out.to_vec());
    assert!(m.max_abs_diff(&expect) < 1e-2, "F-COO diff {}", m.max_abs_diff(&expect));

    // HiCOO.
    let hicoo = HiCooTensor::from_coo(&t, 4);
    let out = AtomicF32Buffer::new(rows * rank);
    HiCooKernel::execute(&hicoo, &f, 0, &out);
    let m = Mat::from_vec(rows, rank, out.to_vec());
    assert!(m.max_abs_diff(&expect) < 1e-2, "HiCOO diff {}", m.max_abs_diff(&expect));

    // CSF.
    let csf = CsfTensor::from_coo(&t, 0);
    let m = scalfrag::kernels::reference::mttkrp_csf(&csf, &f);
    assert!(m.max_abs_diff(&expect) < 1e-2, "CSF diff {}", m.max_abs_diff(&expect));
}

#[test]
fn mttkrp_after_slice_reordering_maps_back() {
    let t = tensor();
    let f = FactorSet::random(t.dims(), 4, 79);
    let expect = mttkrp_seq(&t, &f, 0);

    let order = SliceOrder::by_descending_population(&t, 0);
    let reordered = order.apply(&t);
    // The mode-0 factor rows must be permuted consistently.
    let mut perm_factor = Mat::zeros(f.get(0).rows(), f.rank());
    for old in 0..f.get(0).rows() {
        let new = order.new_index(old as u32) as usize;
        perm_factor.row_mut(new).copy_from_slice(f.get(0).row(old));
    }
    let mut pf = f.clone();
    pf.set(0, perm_factor);
    let m = mttkrp_seq(&reordered, &pf, 0);
    let back = order.unpermute_rows(m.as_slice(), f.rank());
    let back = Mat::from_vec(m.rows(), m.cols(), back);
    assert!(back.max_abs_diff(&expect) < 1e-3);
}

#[test]
fn spttm_composes_with_mttkrp_shapes() {
    // SpTTM then reading fibers gives a semi-sparse tensor with the rank
    // as the dense extent — the building block of Tucker-style chains.
    let t = tensor();
    let f = FactorSet::random(t.dims(), 8, 80);
    let semi = spttm::spttm_with_factor(&t, &f, 2);
    assert_eq!(semi.r(), 8);
    assert_eq!(semi.mode(), 2);
    assert_eq!(semi.num_fibers(), t.num_fibers(2));
    let back = semi.to_coo();
    assert_eq!(back.dims()[2], 8);
    assert!(back.nnz() > 0);
}

#[test]
fn profiler_and_trace_cover_a_real_pipeline_run() {
    let mut t = tensor();
    t.sort_for_mode(0);
    let f = FactorSet::random(t.dims(), 8, 81);
    let plan = scalfrag::pipeline::PipelinePlan::new(&t, 0, LaunchConfig::new(1024, 256), 4, 4);
    let mut gpu = Gpu::new(DeviceSpec::rtx3090());
    let run = scalfrag::pipeline::execute_pipelined(
        &mut gpu,
        &t,
        &f,
        &plan,
        scalfrag::pipeline::KernelChoice::Tiled,
        scalfrag::exec::ExecMode::Dry,
    );

    let p = profiler::profile(&run.timeline);
    assert_eq!(p.by_label.iter().filter(|(l, _)| l.contains("kernel")).count(), 4);
    assert!(p.h2d_s > 0.0 && p.kernel_s > 0.0 && p.d2h_s > 0.0);
    assert!((p.makespan_s - run.makespan()).abs() < 1e-15);
    let rendered = p.render();
    assert!(rendered.contains("seg0 kernel"));

    let json = trace::chrome_trace_string(&run.timeline);
    assert_eq!(json.matches("\"ph\":\"X\"").count(), run.timeline.spans.len());
    assert!(json.contains("factors H2D"));
}

#[test]
fn kernel_analysis_explains_the_fig4_corner() {
    // The tiny-corner cell of Fig. 4 must be bound by the serial chain or
    // memory-latency, never by compute.
    let d = DeviceSpec::rtx3090();
    let t = tensor();
    let stats = scalfrag::kernels::SegmentStats::compute(&t, 0);
    let w = scalfrag::kernels::workload::coo_atomic_workload(&stats, 16);
    let corner = profiler::analyze_kernel(&d, &LaunchConfig::new(32, 32), &w);
    assert_ne!(corner.bound_by, "compute");
    let good = profiler::analyze_kernel(&d, &LaunchConfig::new(2048, 256), &w);
    assert!(good.breakdown.total < corner.breakdown.total);
}
