//! Plan-optimizer safety over every registered builder (DESIGN.md §14).
//!
//! Three layers of proof that the passes cannot corrupt a schedule:
//!
//! 1. **Contracts, mechanically** — every pass × every registered
//!    builder through [`scalfrag::opt::check_pass`]: idempotence, the
//!    declared trace effect, dry-run leak-cleanliness and functional
//!    bit-identity.
//! 2. **Pass algebra** — every declared commutation, checked in both
//!    orders on every builder's plan; the declaration table itself must
//!    be symmetric.
//! 3. **The oracle** — all ten builders, run through the full default
//!    pipeline, must stay ULP-clean against the `f64` differential
//!    oracle over the seeded corpus; every candidate pipeline must keep
//!    the output *bit-identical* to the raw plan (the passes only move
//!    copies and bookkeeping, never kernel submission order).

use scalfrag::conformance::{all_plan_builders, run_differential, smoke_corpus, Backend};
use scalfrag::exec::{run_plan, ExecMode};
use scalfrag::opt::{
    all_passes, candidate_pipelines, check_commutation, check_pass, optimize_default,
};
use scalfrag::prelude::*;
use scalfrag::tensor::gen;

fn fixture() -> (CooTensor, FactorSet) {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    (tensor, factors)
}

#[test]
fn every_pass_upholds_its_contract_on_every_registered_builder() {
    let (tensor, factors) = fixture();
    for builder in all_plan_builders() {
        let plan = (builder.build)(&tensor, &factors, 0);
        for pass in all_passes() {
            if let Err(violation) = check_pass(pass.as_ref(), &plan) {
                panic!("{} on {}: {violation}", pass.name(), builder.name);
            }
        }
    }
}

#[test]
fn declared_commutations_are_symmetric_and_hold_on_every_builder() {
    let passes = all_passes();
    let by_name = |name: &str| {
        passes
            .iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("commutation declares unknown pass `{name}`"))
    };
    // The declaration table must be symmetric: commutation is.
    let mut pairs = Vec::new();
    for a in &passes {
        for &b_name in a.contract().commutes_with {
            let b = by_name(b_name);
            assert!(
                b.contract().commutes_with.contains(&a.name()),
                "{} declares commutation with {} but not vice versa",
                a.name(),
                b_name
            );
            if a.name() < b_name {
                pairs.push((a.clone(), b.clone()));
            }
        }
    }
    assert!(pairs.len() >= 5, "the pass set declares a real commutation algebra");
    let (tensor, factors) = fixture();
    for builder in all_plan_builders() {
        let plan = (builder.build)(&tensor, &factors, 0);
        for (a, b) in &pairs {
            if let Err(violation) = check_commutation(a.as_ref(), b.as_ref(), &plan) {
                panic!("on {}: {violation}", builder.name);
            }
            if let Err(violation) = check_commutation(b.as_ref(), a.as_ref(), &plan) {
                panic!("on {} (reversed): {violation}", builder.name);
            }
        }
    }
}

/// The tentpole acceptance gate: all eleven registered builders, through
/// the full default pipeline, ULP-clean against the differential oracle.
#[test]
fn optimized_builders_stay_ulp_clean_against_the_oracle() {
    let backends: Vec<Backend> = all_plan_builders()
        .into_iter()
        .map(|builder| {
            let name: &'static str = Box::leak(format!("opt:{}", builder.name).into_boxed_str());
            Backend {
                name,
                run: Box::new(move |t, f, mode| {
                    let plan = optimize_default(&(builder.build)(t, f, mode));
                    assert!(
                        !plan.meta.optimizer.is_empty(),
                        "{name}: optimized plans carry provenance"
                    );
                    run_plan(&plan, ExecMode::Functional).output
                }),
            }
        })
        .collect();
    assert_eq!(backends.len(), 11, "eleven registered builders expected");
    let cases: Vec<_> = smoke_corpus(17).into_iter().filter(|c| c.tensor.nnz() > 0).collect();
    assert!(cases.len() >= 3);
    let report = run_differential(&backends, &cases, 17);
    assert!(report.all_pass(), "optimized plans left ULP tolerance:\n{}", report.table());
}

/// Stronger than ULP-clean: every candidate pipeline (default, batch,
/// overlap — all pure copy/bookkeeping moves) keeps the output
/// bit-identical to the raw plan over the seeded corpus.
#[test]
fn every_candidate_pipeline_is_bit_identical_over_the_corpus() {
    let cases: Vec<_> =
        smoke_corpus(23).into_iter().filter(|c| c.tensor.nnz() > 0).take(3).collect();
    for builder in all_plan_builders() {
        for (ci, case) in cases.iter().enumerate() {
            let factors = FactorSet::random(case.tensor.dims(), case.rank, 91 + ci as u64);
            let plan = (builder.build)(&case.tensor, &factors, 0);
            let raw: Vec<u32> = run_plan(&plan, ExecMode::Functional)
                .output
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            for pipeline in candidate_pipelines() {
                let optimized = pipeline.apply(&plan);
                let got: Vec<u32> = run_plan(&optimized, ExecMode::Functional)
                    .output
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(
                    raw,
                    got,
                    "{} × pipeline `{}` on {}: output bits moved",
                    builder.name,
                    pipeline.name(),
                    case.name
                );
            }
        }
    }
}

/// The default pipeline strictly shrinks the pipelined builder's op
/// budget (the `opt --smoke` CI gate asserts the same on the bench
/// tensor) and never grows any builder's.
#[test]
fn default_pipeline_reduces_op_count_and_never_grows_it() {
    let (tensor, factors) = fixture();
    for builder in all_plan_builders() {
        let plan = (builder.build)(&tensor, &factors, 0);
        let optimized = optimize_default(&plan);
        assert!(
            optimized.total_ops() <= plan.total_ops(),
            "{}: the default pipeline only removes or merges ops",
            builder.name
        );
        if builder.name == "scalfrag-pipelined" || builder.name == "scalfrag-sync" {
            assert!(
                optimized.total_ops() < plan.total_ops(),
                "{}: coalescing must fire here",
                builder.name
            );
        }
    }
}
