//! The conformance harness as an integration gate (DESIGN.md §10).
//!
//! Differential: all kernel formats × the full ≥20-case seeded corpus ×
//! every mode against the `f64` oracle; execution paths over a diverse
//! subset. Metamorphic: the invariant catalogue applied to raw kernels
//! and full paths. Race: the checker self-test. Plus pinned regressions
//! for the degenerate inputs and the historically-suspect spots (HiCOO
//! block-edge accumulation, BCSF threshold extremes, resilient retries).

use scalfrag::conformance::{
    self, all_plan_builders, corpus, kernel_backends, max_ulp, oracle_mttkrp, path_backends,
    race_self_test, run_differential, run_differential_parallel, smoke_corpus, tolerance_for,
    Exactness,
};
use scalfrag::exec::run_plan;
use scalfrag::kernels::{AtomicF32Buffer, BcsfKernel, HiCooKernel};
use scalfrag::prelude::*;
use scalfrag::tensor::{gen, HiCooTensor, ModePermutation};

const SEED: u64 = 0xc04f_0041;

fn mat_of(buf: AtomicF32Buffer, rows: usize, rank: usize) -> Mat {
    Mat::from_vec(rows, rank, buf.to_vec())
}

#[test]
fn all_kernel_formats_conform_on_the_full_corpus() {
    let cases = corpus(SEED);
    assert!(cases.len() >= 20);
    let report = run_differential(&kernel_backends(), &cases, SEED);
    assert!(report.all_pass(), "kernel conformance failed:\n{}", report.table());
    // The table satellite: one line per backend, PASS/FAIL visible.
    let table = report.table();
    for b in &kernel_backends() {
        assert!(table.contains(b.name), "table missing backend {}", b.name);
    }
}

/// The parallel-sweep satellite: the full ≥20-case corpus through the
/// pool-backed runner is **field-for-field identical** to the sequential
/// runner — same `max_ulp`, same `worst_case`, same `first_divergence` —
/// and that equality holds at every pool size. ULP budgets and
/// first-divergence semantics are unchanged by parallelism.
#[test]
fn parallel_corpus_runner_matches_sequential_field_for_field() {
    let cases = corpus(SEED);
    assert!(cases.len() >= 20);
    let backends = kernel_backends();
    let sequential = run_differential(&backends, &cases, SEED);
    scalfrag::host::check::assert_thread_invariant("parallel-corpus-runner", || {
        let parallel = run_differential_parallel(&backends, &cases, SEED);
        assert_eq!(sequential, parallel, "parallel report diverged from sequential");
        parallel.cases
    });
    assert!(sequential.all_pass(), "corpus must pass:\n{}", sequential.table());
}

/// Divergence reporting under parallelism: a broken backend must yield
/// the *same* first-divergence coordinates from the parallel runner as
/// from the sequential one — submission-order folding means "first" is
/// (case, mode) order, not completion order.
#[test]
fn parallel_runner_reports_identical_divergence_for_a_mutant() {
    use scalfrag::conformance::backends::Backend;
    let make = || {
        vec![
            Backend { name: "honest-oracle", run: Box::new(oracle_mttkrp) },
            Backend {
                name: "mutant-double",
                run: Box::new(|t, f, mode| {
                    let mut y = oracle_mttkrp(t, f, mode);
                    y.scale(2.0);
                    y
                }),
            },
        ]
    };
    let cases: Vec<_> =
        smoke_corpus(SEED ^ 21).into_iter().filter(|c| c.tensor.nnz() > 0).take(4).collect();
    let sequential = run_differential(&make(), &cases, SEED ^ 21);
    let parallel =
        scalfrag::host::with_threads(4, || run_differential_parallel(&make(), &cases, SEED ^ 21));
    assert_eq!(sequential, parallel);
    assert!(sequential.verdicts[0].pass());
    let d = parallel.verdicts[1].first_divergence.as_ref().expect("mutant must be flagged");
    let e = sequential.verdicts[1].first_divergence.as_ref().unwrap();
    assert_eq!((&d.case, d.mode, d.row, d.col, d.ulp), (&e.case, e.mode, e.row, e.col, e.ulp));
}

#[test]
fn execution_paths_conform_on_a_diverse_subset() {
    let cases: Vec<_> = smoke_corpus(SEED ^ 7)
        .into_iter()
        .filter(|c| c.name != "smoke/empty") // paths run the empty case below
        .take(3)
        .collect();
    let report = run_differential(&path_backends(), &cases, SEED ^ 7);
    assert!(report.all_pass(), "path conformance failed:\n{}", report.table());
    assert!(report.verdicts.len() >= 3, "need ≥3 execution paths");
}

#[test]
fn degenerate_regressions_empty_one_slice_rank1() {
    // Empty tensor: every kernel format must produce an all-zero output
    // of the right shape without panicking.
    let empty = CooTensor::new(&[8, 6, 4]);
    let f = FactorSet::random(empty.dims(), 4, SEED);
    for b in kernel_backends() {
        for mode in 0..3 {
            let y = (b.run)(&empty, &f, mode);
            assert_eq!(y.rows(), empty.dims()[mode] as usize, "{}", b.name);
            assert!(y.as_slice().iter().all(|&v| v == 0.0), "{} nonzero on empty", b.name);
        }
    }

    // All nnz in one slice: maximum row contention, single heavy slice.
    let mut one_slice = CooTensor::new(&[16, 8, 8]);
    {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
        for _ in 0..600 {
            one_slice.push(
                &[0, rng.gen_range(0..8u32), rng.gen_range(0..8u32)],
                rng.gen::<f32>() * 0.999 + 1e-3,
            );
        }
    }
    let f = FactorSet::random(one_slice.dims(), 8, SEED ^ 2);
    let expected = oracle_mttkrp(&one_slice, &f, 0);
    let tol = tolerance_for(&one_slice, 0);
    for b in kernel_backends() {
        let y = (b.run)(&one_slice, &f, 0);
        let w = max_ulp(expected.as_slice(), y.as_slice());
        assert!(w.max_ulp <= tol, "{}: {} ulp > {tol} on one-slice", b.name, w.max_ulp);
    }

    // Rank 1: the degenerate factor width.
    let t = gen::uniform(&[24, 16, 12], 800, SEED ^ 3);
    let f1 = FactorSet::random(t.dims(), 1, SEED ^ 4);
    let expected = oracle_mttkrp(&t, &f1, 0);
    let tol = tolerance_for(&t, 0);
    for b in kernel_backends() {
        let y = (b.run)(&t, &f1, 0);
        let w = max_ulp(expected.as_slice(), y.as_slice());
        assert!(w.max_ulp <= tol, "{}: {} ulp > {tol} at rank 1", b.name, w.max_ulp);
    }
}

#[test]
fn metamorphic_catalogue_holds_for_kernels_and_paths() {
    let t = gen::zipf_slices(&[48, 32, 24], 3_000, 1.0, SEED);
    let f = FactorSet::random(t.dims(), 8, SEED ^ 5);
    let perm = ModePermutation::new(vec![1, 2, 0]);

    for b in kernel_backends() {
        let run = |t: &CooTensor, f: &FactorSet, m: usize| (b.run)(t, f, m);
        // Sorting kernels tie-break on relabelled modes → ULP class.
        conformance::metamorphic::mode_permutation(
            run,
            &t,
            &f,
            0,
            &perm,
            Exactness::Ulp(tolerance_for(&t, 0)),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        conformance::metamorphic::nnz_shuffle(run, &t, &f, 0, SEED ^ 6)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        conformance::metamorphic::factor_scaling(run, &t, &f, 0, 4)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        conformance::metamorphic::rank_column_permutation(run, &t, &f, 0, SEED ^ 8)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    }

    // Paths: scaling linearity on the single-GPU facades (bitwise).
    for b in path_backends().into_iter().filter(|b| b.name.starts_with("path:scalfrag")) {
        let run = |t: &CooTensor, f: &FactorSet, m: usize| (b.run)(t, f, m);
        conformance::metamorphic::factor_scaling(run, &t, &f, 0, -3)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    }
}

#[test]
fn segment_and_device_count_invariance() {
    let t = gen::zipf_slices(&[64, 40, 32], 4_000, 0.9, SEED ^ 9);
    let f = FactorSet::random(t.dims(), 8, SEED ^ 10);
    let cfg = LaunchConfig::new(512, 256);

    conformance::metamorphic::segment_count_invariance(
        |t, f, m, segs| {
            ScalFrag::builder().fixed_config(cfg).segments(segs).build().mttkrp(t, f, m).output
        },
        &t,
        &f,
        0,
        &[1, 2, 4, 8],
    )
    .unwrap();

    // Pinned shard count ⇒ the reduction folds identical shards in the
    // same global order regardless of how many devices ran them.
    conformance::metamorphic::device_count_invariance(
        |t, f, m, devices| {
            ClusterScalFrag::builder()
                .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), devices))
                .fixed_config(cfg)
                .shards(8)
                .build()
                .mttkrp(t, f, m)
                .output
        },
        &t,
        &f,
        0,
        &[1, 2, 4],
    )
    .unwrap();
}

#[test]
fn race_checker_catches_mutant_and_passes_kernels() {
    race_self_test().unwrap();
}

/// The ScheduleIR gate: every registered plan builder, interpreted
/// functionally, lands ULP-clean against the `f64` oracle — and the same
/// plan interpreted dry (pre-numerics) schedules the identical trace as
/// the functional run (post-numerics), fingerprint-equal.
#[test]
fn plan_builders_conform_ulp_clean_pre_and_post_execution() {
    let t = gen::zipf_slices(&[48, 32, 24], 3_000, 1.0, SEED ^ 17);
    let f = FactorSet::random(t.dims(), 8, SEED ^ 18);
    let expected = oracle_mttkrp(&t, &f, 0);
    let tol = tolerance_for(&t, 0);
    let builders = all_plan_builders();
    assert!(builders.len() >= 6, "the workspace registers at least six plan builders");
    for b in &builders {
        let plan = (b.build)(&t, &f, 0);
        let wet = run_plan(&plan, ExecMode::Functional);
        let dry = run_plan(&plan, ExecMode::Dry);
        assert!(!wet.trace.is_empty(), "{}: functional run must emit a plan trace", b.name);
        let w = max_ulp(expected.as_slice(), wet.output.as_slice());
        assert!(w.max_ulp <= tol, "{}: {} ulp > {tol} against the oracle", b.name, w.max_ulp);
        assert_eq!(
            wet.trace.fingerprint(),
            dry.trace.fingerprint(),
            "{}: dry and functional runs must schedule the identical trace",
            b.name
        );
        assert!(
            dry.output.as_slice().iter().all(|&v| v == 0.0),
            "{}: dry runs keep no numerics",
            b.name
        );
    }
}

/// Pinned regression: HiCOO block-edge accumulation on dims that are not
/// multiples of the block edge, across block sizes. (Named a likely
/// suspect when this harness was built; proven clean — keep it that way.)
#[test]
fn regression_hicoo_block_edges_on_unaligned_dims() {
    let t = gen::zipf_slices(&[30, 23, 17], 2_000, 1.1, SEED ^ 11);
    let f = FactorSet::random(t.dims(), 8, SEED ^ 12);
    for mode in 0..3 {
        let expected = oracle_mttkrp(&t, &f, mode);
        let tol = tolerance_for(&t, mode);
        for bits in 1..=5u32 {
            let h = HiCooTensor::from_coo(&t, bits);
            let out = AtomicF32Buffer::new(t.dims()[mode] as usize * 8);
            HiCooKernel::execute(&h, &f, mode, &out);
            let w =
                max_ulp(expected.as_slice(), mat_of(out, t.dims()[mode] as usize, 8).as_slice());
            assert!(w.max_ulp <= tol, "hicoo mode {mode} bits {bits}: {} ulp > {tol}", w.max_ulp);
        }
    }
}

/// Pinned regression: BCSF heavy/light split at threshold extremes —
/// everything-heavy (0, 1) and everything-light (huge) must both conform.
#[test]
fn regression_bcsf_threshold_extremes() {
    let mut t = gen::zipf_slices(&[40, 24, 20], 2_500, 1.2, SEED ^ 13);
    t.sort_for_mode(0);
    let f = FactorSet::random(t.dims(), 8, SEED ^ 14);
    let expected = oracle_mttkrp(&t, &f, 0);
    let tol = tolerance_for(&t, 0);
    for thr in [0u32, 1, 2, 64, 1_000_000] {
        let split = BcsfKernel::split(&t, 0, thr);
        let out = AtomicF32Buffer::new(t.dims()[0] as usize * 8);
        BcsfKernel::execute(&t, &f, 0, &split, &out);
        let w = max_ulp(expected.as_slice(), mat_of(out, t.dims()[0] as usize, 8).as_slice());
        assert!(w.max_ulp <= tol, "bcsf threshold {thr}: {} ulp > {tol}", w.max_ulp);
    }
}

/// Pinned regression: the resilient cluster path must not double-count a
/// retried segment — recovered runs land bitwise on the fault-free output.
#[test]
fn regression_resilient_retry_has_no_double_accumulation() {
    let t = gen::zipf_slices(&[64, 48, 32], 5_000, 1.0, SEED ^ 15);
    let f = FactorSet::random(t.dims(), 8, SEED ^ 16);
    let build = || {
        ClusterScalFrag::builder()
            .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3))
            .fixed_config(LaunchConfig::new(512, 256))
            .shards(6)
            .build()
    };
    let clean = build().mttkrp(&t, &f, 0).output;
    let plan = FaultPlan::new()
        .fault(0, FaultTrigger::AtOp(2), FaultKind::KernelAbort)
        .fault(1, FaultTrigger::AtOp(4), FaultKind::DeviceFail { down_s: Some(1e-3) })
        .fault(2, FaultTrigger::AtOp(3), FaultKind::TransferCorruption);
    let mut inj = FaultInjector::new(plan);
    let run = build().mttkrp_resilient(&t, &f, 0, &mut inj, &FaultRecoveryPolicy::retry_reshard());
    assert_eq!(run.failed_segments, 0);
    assert!(run.retries > 0, "the plan must actually force retries");
    let w = max_ulp(clean.as_slice(), run.report.output.as_slice());
    assert_eq!(w.max_ulp, 0, "retried output differs from fault-free bits by {} ulp", w.max_ulp);
}
