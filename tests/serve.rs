//! Integration tests of the serving layer: determinism of whole serving
//! runs, bounded behaviour under overload, and the plan-cache soundness
//! property (equal feature keys ⇒ interchangeable plans).

use proptest::prelude::*;
use scalfrag::prelude::*;
use scalfrag::serve::{synthesize, WorkloadSpec};
use scalfrag_autotune::TrainedPredictor;
use std::sync::{Arc, OnceLock};

const TRAIN_TIERS: [usize; 2] = [3_000, 12_000];

/// One predictor shared by every test in this file — training is the
/// expensive part, and sharing it also exercises the cheap-clone handle.
fn shared_predictor() -> TrainedPredictor {
    static PREDICTOR: OnceLock<TrainedPredictor> = OnceLock::new();
    PREDICTOR
        .get_or_init(|| {
            TrainedPredictor::train_once(&DeviceSpec::rtx3090(), 0x5ca1, Some(TRAIN_TIERS.to_vec()))
        })
        .clone()
}

fn small_spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        jobs: 40,
        tenants: 3,
        shape_classes: 4,
        variants_per_class: 2,
        base_nnz: 3_000,
        seed,
        ..Default::default()
    }
}

fn server_on(pool: DevicePool) -> ScalFragServer {
    ScalFragServer::builder().pool(pool).predictor(shared_predictor()).build()
}

#[test]
fn same_seed_and_stream_give_identical_reports() {
    let pool = || DevicePool::homogeneous(DeviceSpec::rtx3090(), 2);
    let a = server_on(pool()).run(synthesize(&small_spec(11)));
    let b = server_on(pool()).run(synthesize(&small_spec(11)));
    assert_eq!(a.fingerprint(), b.fingerprint(), "serving must be deterministic");
    assert_eq!(a.completed.len(), b.completed.len());
    // And sensitive to the workload seed.
    let c = server_on(pool()).run(synthesize(&small_spec(12)));
    assert_ne!(a.fingerprint(), c.fingerprint(), "different stream must show");
}

#[test]
fn overload_stays_bounded_and_rejections_are_typed() {
    let spec = WorkloadSpec {
        // Essentially simultaneous arrivals: far beyond pool capacity.
        mean_interarrival_s: 1e-6,
        burstiness: 1.0,
        ..small_spec(21)
    };
    let jobs = spec.jobs;
    let policy = AdmissionPolicy { max_queue_depth: 8, makespan_budget_s: 0.01 };
    let server = ScalFragServer::builder()
        .device(DeviceSpec::rtx3090())
        .admission(policy)
        .predictor(shared_predictor())
        .build();
    let report = server.run(synthesize(&spec));
    assert_eq!(report.completed.len() + report.rejected.len(), jobs, "no job lost silently");
    assert!(!report.rejected.is_empty(), "overload must reject");
    assert!(
        report.peak_queue_depth <= policy.max_queue_depth,
        "queue depth {} exceeds the cap {}",
        report.peak_queue_depth,
        policy.max_queue_depth
    );
    for r in &report.rejected {
        match r.reason {
            scalfrag::serve::RejectReason::QueueFull { depth, limit } => {
                assert!(depth >= limit, "QueueFull must report a saturated queue")
            }
            scalfrag::serve::RejectReason::BacklogExceeded { wait_est_s, budget_s } => {
                assert!(wait_est_s > budget_s, "BacklogExceeded must report the excess")
            }
            scalfrag::serve::RejectReason::DeviceFailure { .. } => {
                panic!("no faults injected, so no device-failure rejections: {r}")
            }
            scalfrag::serve::RejectReason::RateLimited { .. } => {
                panic!("no tenant rate limit configured, so no rate-limited rejections: {r}")
            }
        }
        assert!(r.retry_after_s.is_finite() && r.retry_after_s > 0.0, "usable retry hint: {r}");
    }
    // Admitted jobs were let in under the budget, so their queue wait must
    // stay near it rather than growing with the offered load.
    let worst_wait = report.completed.iter().map(|r| r.queue_wait_s()).fold(0.0f64, f64::max);
    assert!(
        worst_wait < 10.0 * policy.makespan_budget_s,
        "admitted-job wait {worst_wait:.4}s unbounded despite admission control"
    );
}

/// Strategy: shape parameters for a pair of same-class tensors (identical
/// dims and nnz, different fill seeds — the plan cache treats them as one
/// shape class whenever their quantized keys agree).
fn arb_shape() -> impl Strategy<Value = (Vec<u32>, usize, u64, u64)> {
    (30u32..90, 25u32..70, 20u32..50, 800usize..3_000, any::<u64>(), any::<u64>())
        .prop_map(|(i, j, k, nnz, s1, s2)| (vec![i, j, k], nnz, s1, s2 ^ 0x9e37_79b9))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plan-cache soundness: when two tensors quantize to the same
    /// [`FeatureKey`], serving the second under the first's cached plan
    /// must cost about the same as planning it from scratch — otherwise
    /// memoization would silently trade latency for correctness of the
    /// *schedule*.
    #[test]
    fn equal_keys_make_plans_interchangeable(shape in arb_shape()) {
        let (dims, nnz, s1, s2) = shape;
        let t1 = Arc::new(CooTensor::random_uniform(&dims, nnz, s1));
        let t2 = Arc::new(CooTensor::random_uniform(&dims, nnz, s2));
        let factors = Arc::new(FactorSet::random(&dims, 16, 7));
        let job = |id: u64, t: &Arc<CooTensor>, at: f64| {
            scalfrag::serve::MttkrpJob::new(id, "t0", Arc::clone(t), Arc::clone(&factors), 0).at(at)
        };
        let server = || {
            ScalFragServer::builder()
                .device(DeviceSpec::rtx3090())
                .predictor(shared_predictor())
                .build()
        };
        let key1 = server().cache_key(&job(0, &t1, 0.0));
        let key2 = server().cache_key(&job(0, &t2, 0.0));
        if key1 != key2 {
            // Rare: the uniform fills straddled an imbalance-bucket edge;
            // the pair is simply not in the property's domain.
            return;
        }

        // Cross run: t2 executes under the plan cached from t1.
        let cross = server().run(vec![job(0, &t1, 0.0), job(1, &t2, 1.0)]);
        prop_assert_eq!(cross.cache.hits, 1, "t2 must reuse t1's plan");
        let cross_t2 = cross.completed.iter().find(|r| r.id == 1).unwrap();
        prop_assert!(cross_t2.cache_hit);

        // Fresh run: t2 plans for itself.
        let fresh = server().run(vec![job(1, &t2, 0.0)]);
        let fresh_t2 = &fresh.completed[0];
        prop_assert!(!fresh_t2.cache_hit);

        let ratio = cross_t2.timing.total_s / fresh_t2.timing.total_s;
        prop_assert!(
            (0.5..=2.0).contains(&ratio),
            "cached plan changed t2's makespan {:.2}x (cached {:.6}s vs fresh {:.6}s)",
            ratio, cross_t2.timing.total_s, fresh_t2.timing.total_s
        );
    }
}
