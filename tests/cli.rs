//! Integration tests driving the `scalfrag-cli` binary end to end.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scalfrag-cli"))
}

fn write_sample_tns() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("scalfrag_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.tns");
    let t = scalfrag::tensor::gen::zipf_slices(&[40, 30, 20], 1_500, 0.8, 13);
    scalfrag::tensor::io::write_tns_file(&t, &path).unwrap();
    path
}

#[test]
fn info_reports_tensor_and_features() {
    let path = write_sample_tns();
    let out = cli().args(["info", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("order     : 3"));
    assert!(text.contains("nnz       : 1500"));
    assert!(text.contains("numSlices"));
    assert!(text.contains("sliceImbalance"));
}

#[test]
fn info_on_preset_works() {
    let out = cli().args(["info", "preset:uber@4096", "--mode", "1"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("order     : 4"));
}

#[test]
fn mttkrp_runs_on_cpu_and_parti_backends() {
    let path = write_sample_tns();
    for backend in ["cpu", "parti"] {
        let out = cli()
            .args(["mttkrp", path.to_str().unwrap(), "--backend", backend, "--rank", "4"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{backend} failed");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("mode-0"), "{backend}: {text}");
    }
}

#[test]
fn cpd_reports_fits() {
    let path = write_sample_tns();
    let out = cli()
        .args(["cpd", path.to_str().unwrap(), "--backend", "cpu", "--rank", "3", "--iters", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sweep  1"));
    assert!(text.contains("fit"));
}

#[test]
fn trace_writes_chrome_json() {
    let path = write_sample_tns();
    let trace_path = std::env::temp_dir().join("scalfrag_cli_tests").join("t.json");
    let out = cli()
        .args(["trace", path.to_str().unwrap(), "--out", trace_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&trace_path).unwrap();
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("seg0 kernel"));
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn bad_arguments_exit_nonzero() {
    let out = cli().args(["bogus-subcommand", "x"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().arg("info").output().unwrap();
    assert!(!out.status.success(), "missing tensor argument must fail");
    let out = cli().args(["info", "preset:does-not-exist"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["info", "/nonexistent/path.tns"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn mode_out_of_range_is_rejected() {
    let path = write_sample_tns();
    let out = cli().args(["info", path.to_str().unwrap(), "--mode", "9"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}
