//! The work-stealing pool under adversarial load, plus the mutant net:
//! deliberately broken parallel disciplines the determinism harness must
//! catch. A test net that only ever passes proves nothing — the mutants
//! prove the invariance checks have teeth.

use scalfrag::host::{self, check};
use scalfrag::kernels::reference::{self, mttkrp_par};
use scalfrag::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Seeded shuffle-heavy stress: unit costs follow a Zipf-ish decay and
/// are shuffled so heavy units land at random positions — the shape that
/// maximizes stealing. Every index must execute exactly once, at every
/// pool size, across repeated runs.
#[test]
fn stress_uneven_shuffled_workload_runs_every_index_exactly_once() {
    use rand::{Rng, SeedableRng};
    const N: usize = 4_096;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57e5);
    // Zipf-ish: unit 0 costs ~2000 spins, the tail costs ~1; then a
    // Fisher–Yates shuffle scatters the heavy units.
    let mut costs: Vec<usize> = (0..N).map(|i| 2_000 / (i + 1) + 1).collect();
    for i in (1..N).rev() {
        let j = rng.gen_range(0..=i);
        costs.swap(i, j);
    }

    for &threads in &check::INVARIANCE_THREADS {
        for round in 0..3 {
            let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
            host::with_threads(threads, || {
                host::par_for(N, 7, |s, e| {
                    for i in s..e {
                        // Busy work proportional to the unit's cost so
                        // piece runtimes are genuinely imbalanced.
                        let mut x = i as u64;
                        for _ in 0..costs[i] {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(x);
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            let bad: Vec<usize> =
                (0..N).filter(|&i| hits[i].load(Ordering::Relaxed) != 1).collect();
            assert!(
                bad.is_empty(),
                "{threads} threads round {round}: {} indices not hit exactly once (first: {:?})",
                bad.len(),
                &bad[..bad.len().min(8)]
            );
        }
    }
}

/// par_map keeps unit order under the same adversarial load.
#[test]
fn stress_par_map_order_survives_heavy_stealing() {
    const N: usize = 2_048;
    for &threads in &check::INVARIANCE_THREADS {
        let got = host::with_threads(threads, || {
            host::par_map(N, |i| {
                let mut x = i as u64;
                for _ in 0..(1_500 / (i + 1) + 1) {
                    x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64);
                }
                (i, x)
            })
        });
        for (i, &(j, _)) in got.iter().enumerate() {
            assert_eq!(i, j, "{threads} threads: slot {i} holds unit {j}");
        }
    }
}

/// Mutant A — thread-derived decomposition. Splitting work by
/// `current_num_threads()` changes which f32 partial sums form at
/// different pool sizes, so the fold moves bits. The invariance harness
/// must reject it; this is exactly the bug class the stale
/// `nnz / (threads * 4)` heuristic in `reference.rs` used to be.
#[test]
fn mutant_thread_derived_chunking_is_caught() {
    // Order-sensitive payload: one huge value among many small ones —
    // grouping decides how much absorption happens.
    let values: Vec<f32> =
        (0..10_000).map(|i| if i == 0 { 1e8 } else { (i as f32 * 0.37).sin() }).collect();
    let err = check::thread_invariant("mutant-thread-chunking", || {
        let chunks = host::current_num_threads() * 4; // the mutant: thread-derived
        let len = values.len().div_ceil(chunks).max(1);
        host::par_map(values.len().div_ceil(len), |c| {
            values[c * len..((c + 1) * len).min(values.len())].iter().fold(0.0f32, |a, &b| a + b)
        })
        .into_iter()
        .fold(0.0f32, |a, b| a + b)
        .to_bits()
    })
    .expect_err("thread-derived chunking must be caught");
    assert!(err.contains("mutant-thread-chunking"), "{err}");
}

/// Mutant B — completion-order folding. Folding partials as units finish
/// (instead of in submission order) is bit-wrong the moment stealing
/// reorders completions. Unit 0 carries the absorbing 1e8 payload and
/// sleeps, so at ≥2 workers units 1 and 2 reliably finish first:
/// (5 + 5) + 1e8 = 100000008 vs the ordered (1e8 + 5) + 5 = 100000016.
#[test]
fn mutant_completion_order_fold_is_caught() {
    let err = check::thread_invariant("mutant-completion-fold", || {
        let done = Mutex::new(Vec::new());
        host::par_for(3, 1, |s, e| {
            for u in s..e {
                let v = if u == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                    1e8f32
                } else {
                    5.0f32
                };
                done.lock().unwrap().push(v); // the mutant: completion order
            }
        });
        done.into_inner().unwrap().into_iter().fold(0.0f32, |a, b| a + b).to_bits()
    })
    .expect_err("completion-order folding must be caught");
    assert!(err.contains("mutant-completion-fold"), "{err}");
    assert!(err.contains("2 worker threads"), "first bad pool size is 2: {err}");
}

/// Regression for the retired heuristic (`reference.rs`): the parallel
/// reference kernel's chunk decomposition is pinned thread-independent,
/// and its output bits do not move with the pool size.
#[test]
fn reference_par_chunking_is_thread_independent() {
    for nnz in [0usize, 1, 31, 4_096, 1_000_000] {
        check::assert_thread_invariant(&format!("par_chunk_len({nnz})"), || {
            reference::par_chunk_len(nnz)
        });
    }
    let t = scalfrag::tensor::gen::zipf_slices(&[40, 30, 20], 3_000, 1.2, 61);
    let f = FactorSet::random(t.dims(), 8, 62);
    check::assert_thread_invariant("mttkrp_par", || {
        mttkrp_par(&t, &f, 0).as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
    });
}

/// The rayon shim's thread count now reflects the host pool (it used to
/// be hardwired to 1); inside `with_threads` the two agree.
#[test]
fn rayon_shim_thread_count_tracks_the_host_pool() {
    for &threads in &check::INVARIANCE_THREADS {
        host::with_threads(threads, || {
            assert_eq!(rayon::current_num_threads(), threads);
            assert_eq!(rayon::current_num_threads(), host::current_num_threads());
        });
    }
}
