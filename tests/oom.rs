//! Out-of-core streaming: budget edge cases, eviction accounting, the
//! dry-run leak check, and the metamorphic budget property (DESIGN.md
//! §13).

use scalfrag::conformance::{max_ulp, oracle_mttkrp, tolerance_for};
use scalfrag::exec::{run_plan, KernelChoice, PlanOp};
use scalfrag::oom::{build_streaming_plan, registry_budget, registry_plan, StreamError};
use scalfrag::prelude::*;
use scalfrag::tensor::gen;

const CFG: LaunchConfig = LaunchConfig { grid: 512, block: 256, shared_mem_per_block: 0 };

fn seed_tensor() -> (CooTensor, FactorSet) {
    let dims = [72u32, 48, 36];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.0, 91);
    let factors = FactorSet::random(&dims, 8, 92);
    (tensor, factors)
}

fn persistent_bytes(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> u64 {
    factors.byte_size() as u64 + (tensor.dims()[mode] as usize * factors.rank() * 4) as u64
}

fn entry_bytes(tensor: &CooTensor) -> u64 {
    (tensor.order() * 4 + 4) as u64
}

#[test]
fn budget_below_one_entry_per_slot_is_a_typed_error() {
    let (tensor, factors) = seed_tensor();
    let persistent = persistent_bytes(&tensor, &factors, 0);
    let eb = entry_bytes(&tensor);
    // One entry total: each of the two slots gets half an entry — the
    // builder must refuse with the minimum feasible budget, not panic.
    let budget = persistent + eb;
    let err = build_streaming_plan(
        &DeviceSpec::rtx3090(),
        &tensor,
        &factors,
        0,
        budget,
        CFG,
        KernelChoice::Tiled,
    )
    .unwrap_err();
    assert_eq!(err, StreamError::BudgetTooSmall { budget, required: persistent + 2 * eb });
    assert!(err.to_string().contains("two staging slots"));
}

#[test]
fn budget_inducing_too_many_segments_is_a_typed_error() {
    let dims = [64u32, 48, 32];
    let tensor = gen::zipf_slices(&dims, 5_000, 1.0, 93);
    let factors = FactorSet::random(&dims, 8, 94);
    // Two one-entry slots cut 5000 nnz into 5000 segments — past the cap.
    let budget = persistent_bytes(&tensor, &factors, 0) + 2 * entry_bytes(&tensor);
    let err = build_streaming_plan(
        &DeviceSpec::rtx3090(),
        &tensor,
        &factors,
        0,
        budget,
        CFG,
        KernelChoice::Tiled,
    )
    .unwrap_err();
    assert_eq!(
        err,
        StreamError::TooManySegments { needed: 5_000, max: scalfrag::oom::MAX_SEGMENTS }
    );
}

#[test]
fn budget_equal_to_working_set_streams_without_evictions() {
    let (tensor, factors) = seed_tensor();
    // The whole entry list fits the two staging slots: both segments stay
    // resident, so the schedule must not evict anything.
    let budget = persistent_bytes(&tensor, &factors, 0) + tensor.byte_size() as u64;
    let plan = build_streaming_plan(
        &DeviceSpec::rtx3090(),
        &tensor,
        &factors,
        0,
        budget,
        CFG,
        KernelChoice::Tiled,
    )
    .unwrap();
    assert_eq!(plan.seg_lists[0].len(), 2, "two slots, two segments");
    let outcome = run_plan(&plan, ExecMode::Dry);
    assert_eq!(outcome.mem[0].evictions, 0);
    assert_eq!(outcome.mem[0].prefetches, 2);
    assert!(outcome.mem[0].peak_bytes <= budget);
}

#[test]
fn tighter_budgets_evict_more_and_stay_within_budget() {
    let (tensor, factors) = seed_tensor();
    let persistent = persistent_bytes(&tensor, &factors, 0);
    let total = tensor.byte_size() as u64;
    let mut last_evictions = 0;
    for divisor in [1u64, 2, 4, 8] {
        let budget = persistent + total / divisor;
        let plan = build_streaming_plan(
            &DeviceSpec::rtx3090(),
            &tensor,
            &factors,
            0,
            budget,
            CFG,
            KernelChoice::Tiled,
        )
        .unwrap();
        let outcome = run_plan(&plan, ExecMode::Dry);
        let mem = outcome.mem[0];
        assert!(mem.peak_bytes <= budget, "peak {} over budget {budget}", mem.peak_bytes);
        assert!(mem.evictions >= last_evictions, "shrinking the budget must not reduce evictions");
        assert_eq!(
            mem.evictions + 2,
            mem.prefetches,
            "every staging slot is evicted except the final two occupants"
        );
        last_evictions = mem.evictions;
    }
    assert!(last_evictions > 0, "the tightest budget must actually evict");
}

/// Metamorphic budget property: shrinking the budget changes the
/// simulated timing (more, smaller transfers; less overlap headroom) but
/// every budget's functional output stays within the oracle's ULP
/// tolerance, and a fixed budget reproduces its output bit-for-bit.
#[test]
fn shrinking_budget_changes_timing_but_stays_ulp_clean() {
    let (tensor, factors) = seed_tensor();
    let persistent = persistent_bytes(&tensor, &factors, 0);
    let total = tensor.byte_size() as u64;
    let oracle = oracle_mttkrp(&tensor, &factors, 0);
    let tol = tolerance_for(&tensor, 0);
    let run = |budget: u64| {
        let plan = build_streaming_plan(
            &DeviceSpec::rtx3090(),
            &tensor,
            &factors,
            0,
            budget,
            CFG,
            KernelChoice::Tiled,
        )
        .unwrap();
        run_plan(&plan, ExecMode::Functional)
    };
    let mut makespans = Vec::new();
    for divisor in [1u64, 4, 16] {
        let budget = persistent + total / divisor;
        let outcome = run(budget);
        let again = run(budget);
        assert_eq!(
            outcome.output.as_slice(),
            again.output.as_slice(),
            "budget {budget}: a fixed budget must be bitwise deterministic"
        );
        let worst = max_ulp(oracle.as_slice(), outcome.output.as_slice());
        assert!(worst.max_ulp <= tol, "budget {budget}: {} ulp > tolerance {tol}", worst.max_ulp);
        makespans.push(outcome.timeline.makespan());
    }
    assert!(
        makespans.windows(2).any(|w| w[0] != w[1]),
        "three 4x-apart budgets with identical makespans: the budget is not \
         reaching the schedule ({makespans:?})"
    );
}

#[test]
fn registry_plan_streams_under_its_budget_with_frees_balanced() {
    let (tensor, factors) = seed_tensor();
    let plan = registry_plan(&tensor, &factors, 0);
    let outcome = run_plan(&plan, ExecMode::Dry);
    let mem = outcome.mem[0];
    assert!(mem.evictions > 0, "the registry budget must force streaming");
    assert!(mem.peak_bytes <= registry_budget(&tensor, &factors, 0));
    // Eviction + the trailing Frees release every staging slot; the dry
    // leak check inside the interpreter has already asserted no transient
    // slot survived.
    assert_eq!(mem.evictions + mem.frees, mem.prefetches);
    assert_eq!(mem.staged_bytes, tensor.byte_size() as u64 + plan.factors_bytes);
}

/// A program that allocates a transient staging slot and never frees it
/// must trip the interpreter's dry-run leak check, not silently leak.
#[test]
#[should_panic(expected = "transient slots")]
fn dry_run_leak_check_catches_unfreed_transients() {
    let (tensor, factors) = seed_tensor();
    let mut plan = registry_plan(&tensor, &factors, 0);
    let program = plan.devices[0].program.as_mut().expect("streaming plans carry a program");
    program.retain(|op| !matches!(op, PlanOp::Free { .. }));
    run_plan(&plan, ExecMode::Dry);
}
