//! Cross-crate correctness: every execution path of the stack must produce
//! the same MTTKRP numbers as the sequential CPU reference.

use scalfrag::kernels::reference::mttkrp_seq;
use scalfrag::kernels::{cpd_als, CpdOptions, CpuParallelBackend};
use scalfrag::prelude::*;

fn max_diff(a: &Mat, b: &Mat) -> f32 {
    a.max_abs_diff(b)
}

fn test_tensors() -> Vec<CooTensor> {
    vec![
        scalfrag::tensor::gen::uniform(&[120, 90, 60], 6_000, 1),
        scalfrag::tensor::gen::zipf_slices(&[200, 80, 80], 8_000, 1.1, 2),
        scalfrag::tensor::gen::blocked(&[128, 128, 128], 5_000, 16, 16, 3),
        scalfrag::tensor::gen::uniform(&[40, 30, 25, 20], 4_000, 4),
        scalfrag::tensor::gen::zipf_slices(&[60, 40, 30, 20], 5_000, 0.8, 5),
    ]
}

#[test]
fn scalfrag_full_stack_matches_reference_on_every_mode() {
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).segments(4).build();
    for (i, t) in test_tensors().iter().enumerate() {
        let f = FactorSet::random(t.dims(), 8, 100 + i as u64);
        for mode in 0..t.order() {
            let r = ctx.mttkrp(t, &f, mode);
            let expect = mttkrp_seq(t, &f, mode);
            assert!(
                max_diff(&r.output, &expect) < 1e-2,
                "tensor {i} mode {mode}: diff {}",
                max_diff(&r.output, &expect)
            );
        }
    }
}

#[test]
fn parti_baseline_matches_reference_on_every_mode() {
    let parti = Parti::rtx3090();
    for (i, t) in test_tensors().iter().enumerate() {
        let f = FactorSet::random(t.dims(), 8, 200 + i as u64);
        for mode in 0..t.order() {
            let r = parti.mttkrp(t, &f, mode);
            let expect = mttkrp_seq(t, &f, mode);
            assert!(max_diff(&r.output, &expect) < 1e-2, "tensor {i} mode {mode}");
        }
    }
}

#[test]
fn all_ablations_agree_numerically() {
    let t = scalfrag::tensor::gen::zipf_slices(&[300, 150, 100], 12_000, 0.9, 9);
    let f = FactorSet::random(t.dims(), 16, 10);
    let expect = mttkrp_seq(&t, &f, 0);

    let variants = [
        ScalFrag::builder().fixed_config(LaunchConfig::new(512, 128)).build(),
        ScalFrag::builder().fixed_config(LaunchConfig::new(512, 128)).pipelined(false).build(),
        ScalFrag::builder().fixed_config(LaunchConfig::new(512, 128)).tiled_kernel(false).build(),
        ScalFrag::builder()
            .fixed_config(LaunchConfig::new(512, 128))
            .hybrid(true)
            .hybrid_threshold(20)
            .build(),
        ScalFrag::builder()
            .fixed_config(LaunchConfig::new(512, 128))
            .segments(7)
            .streams(3)
            .build(),
    ];
    for (i, ctx) in variants.iter().enumerate() {
        let r = ctx.mttkrp(&t, &f, 0);
        assert!(
            max_diff(&r.output, &expect) < 1e-2,
            "ablation {i}: diff {}",
            max_diff(&r.output, &expect)
        );
    }
}

#[test]
fn csf_tensor_agrees_with_coo_path() {
    let t = scalfrag::tensor::gen::uniform(&[80, 60, 40], 5_000, 21);
    let f = FactorSet::random(t.dims(), 8, 22);
    for mode in 0..3 {
        let csf = CsfTensor::from_coo(&t, mode);
        let via_csf = scalfrag::kernels::reference::mttkrp_csf(&csf, &f);
        let via_coo = mttkrp_seq(&t, &f, mode);
        assert!(max_diff(&via_csf, &via_coo) < 1e-3, "mode {mode}");
    }
}

#[test]
fn gpu_backed_cpd_matches_cpu_cpd_trajectory() {
    let t = scalfrag::tensor::gen::uniform(&[60, 50, 40], 4_000, 31);
    let opts = CpdOptions { rank: 4, max_iters: 4, tol: 0.0, seed: 32, nonnegative: false };

    let cpu = cpd_als(&t, &opts, &mut CpuParallelBackend);

    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(256, 128)).build();
    let mut backend = ctx.backend();
    let gpu = cpd_als(&t, &opts, &mut backend);

    assert_eq!(cpu.iters, gpu.iters);
    for (a, b) in cpu.fits.iter().zip(&gpu.fits) {
        assert!(
            (a - b).abs() < 1e-3,
            "fit trajectories diverged: {:?} vs {:?}",
            cpu.fits,
            gpu.fits
        );
    }

    let parti = Parti::rtx3090();
    let mut pb = parti.backend();
    let via_parti = cpd_als(&t, &opts, &mut pb);
    for (a, b) in cpu.fits.iter().zip(&via_parti.fits) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn tns_file_round_trip_preserves_mttkrp() {
    let t = scalfrag::tensor::gen::uniform(&[50, 40, 30], 2_000, 41);
    let f = FactorSet::random(t.dims(), 8, 42);
    let mut buf = Vec::new();
    scalfrag::tensor::io::write_tns(&t, &mut buf).unwrap();
    let t2 = scalfrag::tensor::io::read_tns(buf.as_slice()).unwrap();
    // Dims may shrink to the max observed index; pad factors accordingly by
    // comparing only through MTTKRP on the common rows.
    let m1 = mttkrp_seq(&t, &f, 0);
    let f2 = FactorSet::from_mats(
        (0..3)
            .map(|m| {
                let rows = t2.dims()[m] as usize;
                Mat::from_fn(rows, 8, |r, c| f.get(m)[(r, c)])
            })
            .collect(),
    );
    let m2 = mttkrp_seq(&t2, &f2, 0);
    for r in 0..m2.rows() {
        for c in 0..8 {
            assert!((m1[(r, c)] - m2[(r, c)]).abs() < 1e-3);
        }
    }
}
