//! End-to-end fault-injection properties (DESIGN.md §9): a seeded
//! *recoverable* fault storm, executed under the full recovery stack
//! (retries + shard re-placement), must produce bit-for-bit the same
//! MTTKRP output as the fault-free run — and replaying the same plan must
//! produce the identical fault log.

use proptest::prelude::*;
use scalfrag::cluster::{execute_cluster, ClusterOptions};
use scalfrag::faults::mat_checksum;
use scalfrag::kernels::{
    cpd_als, cpd_als_checkpointed, CheckpointConfig, CpuSequentialBackend, ScriptedFailureBackend,
};
use scalfrag::prelude::*;

const DEVICES: usize = 3;

fn node() -> NodeSpec {
    NodeSpec::homogeneous(DeviceSpec::rtx3090(), DEVICES)
}

fn opts() -> ClusterOptions {
    ClusterOptions::new(LaunchConfig::new(512, 256), 4)
}

fn workload(seed: u64) -> (CooTensor, FactorSet) {
    let dims = [96u32, 80, 64];
    let tensor = scalfrag::tensor::gen::zipf_slices(&dims, 8_000, 0.9, seed);
    let factors = FactorSet::random(&dims, 8, seed ^ 1);
    (tensor, factors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: any seeded recoverable storm, given enough
    /// retry budget, recovers to the fault-free bits; and the same seed
    /// replays to the identical fault log.
    #[test]
    fn recoverable_storms_recover_bit_exactly(
        seed in any::<u64>(),
        data_seed in any::<u64>(),
        mtbf in 3u64..10,
    ) {
        let (tensor, factors) = workload(data_seed);
        let clean = execute_cluster(&node(), &tensor, &factors, 0, &opts(), ExecMode::Functional);

        let plan = FaultPlan::seeded_storm(seed, DEVICES, mtbf, 24, /* recoverable_only */ true);
        // Every scheduled fault costs at most one attempt, so this budget
        // can never exhaust on a recoverable plan.
        let policy = FaultRecoveryPolicy::retry_reshard()
            .with_retry(RetryPolicy::with_attempts(plan.len() as u32 + 4));

        let mut inj = FaultInjector::new(plan.clone());
        let run = execute_cluster_resilient(
            &node(), &tensor, &factors, 0, &opts(), &mut inj, &policy, ExecMode::Functional,
        );
        prop_assert!(
            run.all_complete(),
            "seed {seed} mtbf {mtbf}: {} segments lost under full recovery",
            run.failed_segments
        );
        prop_assert_eq!(
            mat_checksum(&run.output),
            mat_checksum(&clean.output),
            "seed {} mtbf {}: recovered output must match the fault-free bits",
            seed,
            mtbf
        );

        // Replay: same plan, fresh injector -> identical log and bits.
        let mut replay = FaultInjector::new(plan);
        let rerun = execute_cluster_resilient(
            &node(), &tensor, &factors, 0, &opts(), &mut replay, &policy, ExecMode::Functional,
        );
        prop_assert_eq!(inj.log().fingerprint(), replay.log().fingerprint());
        prop_assert_eq!(mat_checksum(&run.output), mat_checksum(&rerun.output));
    }

    /// Same seed, same plan — before any execution consumes it.
    #[test]
    fn seeded_plans_are_reproducible(seed in any::<u64>(), mtbf in 2u64..16) {
        let a = FaultPlan::seeded_storm(seed, DEVICES, mtbf, 32, true);
        let b = FaultPlan::seeded_storm(seed, DEVICES, mtbf, 32, true);
        prop_assert_eq!(a, b);
    }
}

/// An *unrecoverable* storm under the ablation baseline demonstrably
/// loses work — the contrast that makes the recovery property meaningful.
#[test]
fn no_retry_baseline_loses_work_under_a_storm() {
    let (tensor, factors) = workload(11);
    let plan = FaultPlan::new()
        .fault(1, FaultTrigger::AtOp(2), FaultKind::DeviceFail { down_s: None })
        .fault(0, FaultTrigger::AtOp(3), FaultKind::TransferCorruption);
    let mut inj = FaultInjector::new(plan);
    let run = execute_cluster_resilient(
        &node(),
        &tensor,
        &factors,
        0,
        &opts(),
        &mut inj,
        &FaultRecoveryPolicy::no_retry(),
        ExecMode::Functional,
    );
    assert!(run.failed_segments > 0, "no-retry must lose the dead device's segments");
    assert_eq!(run.dead_devices, vec![1]);
}

/// The serving layer rides out a transient outage via requeue: every job
/// completes, some on a second attempt, and the report is reproducible.
#[test]
fn serving_requeues_through_a_transient_outage_deterministically() {
    use scalfrag::serve::{synthesize, DevicePool, ScalFragServer, WorkloadSpec};
    let jobs = synthesize(&WorkloadSpec { jobs: 24, base_nnz: 2_000, ..Default::default() });
    let server = ScalFragServer::builder()
        .pool(DevicePool::homogeneous(DeviceSpec::rtx3090(), 2))
        .train_tiers(vec![2_000, 8_000])
        .max_retries(3)
        .build();
    let plan = FaultPlan::new().fault(
        0,
        FaultTrigger::AtTime(2e-3),
        FaultKind::DeviceFail { down_s: Some(5e-3) },
    );
    let run = |jobs: Vec<MttkrpJob>| {
        let mut inj = FaultInjector::new(plan.clone());
        let report = server.run_with_faults(jobs, &mut inj);
        (report.fingerprint(), inj.log().fingerprint(), report.completed.len())
    };
    let (fp_a, log_a, done_a) = run(jobs.clone());
    let (fp_b, log_b, done_b) = run(jobs);
    assert_eq!(done_a, 24, "retries must carry every job through the outage");
    assert_eq!((fp_a, log_a), (fp_b, log_b), "faulted serving must be bit-reproducible");
    assert_eq!(done_a, done_b);
}

/// Checkpointed CPD-ALS rolls back through scripted kernel aborts and
/// still lands on the exact fault-free trajectory.
#[test]
fn checkpointed_cpd_recovers_the_fault_free_trajectory() {
    let (tensor, _) = workload(23);
    let opts = scalfrag::kernels::CpdOptions {
        rank: 6,
        max_iters: 8,
        tol: 0.0,
        seed: 5,
        ..Default::default()
    };
    let clean = cpd_als(&tensor, &opts, &mut CpuSequentialBackend);
    let mut backend = ScriptedFailureBackend::new(CpuSequentialBackend, vec![7, 16]);
    let ckpt = cpd_als_checkpointed(&tensor, &opts, &CheckpointConfig::default(), &mut backend)
        .expect("two scripted aborts fit the rollback budget");
    assert_eq!(ckpt.rollbacks, 2);
    for mode in 0..tensor.dims().len() {
        assert_eq!(
            mat_checksum(clean.factors.get(mode)),
            mat_checksum(ckpt.result.factors.get(mode)),
            "rollback must reproduce the clean bits for mode {mode}"
        );
    }
}
