//! Property-based tests (proptest) on the core invariants of the stack.

use proptest::prelude::*;
use scalfrag::gpusim::{DeviceSpec, Gpu, LaunchConfig};
use scalfrag::kernels::reference::mttkrp_seq;
use scalfrag::prelude::*;
use scalfrag::tensor::segment;

/// Strategy: a small random tensor (order 3, bounded dims/nnz).
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2u32..24, 2u32..24, 2u32..24, 1usize..200, any::<u64>()).prop_map(|(i, j, k, nnz, seed)| {
        let cells = (i as usize) * (j as usize) * (k as usize);
        CooTensor::random_uniform(&[i, j, k], nnz.min(cells / 2).max(1), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sort_preserves_entries_and_orders(t in arb_tensor(), mode in 0usize..3) {
        let mut sorted = t.clone();
        sorted.sort_for_mode(mode);
        let order = sorted.mode_order(mode);
        prop_assert!(sorted.is_sorted_by_order(&order));
        prop_assert_eq!(sorted.nnz(), t.nnz());
        // Same multiset of entries.
        let mut a: Vec<(Vec<u32>, f32)> = (0..t.nnz()).map(|e| (t.coord(e), t.values()[e])).collect();
        let mut b: Vec<(Vec<u32>, f32)> =
            (0..sorted.nnz()).map(|e| (sorted.coord(e), sorted.values()[e])).collect();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn csf_round_trip_preserves_dense_form(t in arb_tensor(), mode in 0usize..3) {
        let csf = CsfTensor::from_coo(&t, mode);
        let mut sorted = t.clone();
        sorted.sort_for_mode(mode);
        prop_assert_eq!(csf.to_coo().to_dense(), sorted.to_dense());
    }

    #[test]
    fn hicoo_round_trip_preserves_dense_form(t in arb_tensor(), bits in 1u32..6) {
        let h = scalfrag::tensor::HiCooTensor::from_coo(&t, bits);
        prop_assert_eq!(h.nnz(), t.nnz());
        prop_assert_eq!(h.to_coo().to_dense(), t.to_dense());
    }

    #[test]
    fn segmentation_partitions_nnz_exactly(t in arb_tensor(), segs in 1usize..10) {
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let parts = segment::segment_on_slice_boundaries(&sorted, 0, segs);
        let total: usize = parts.iter().map(|s| s.nnz()).sum();
        prop_assert_eq!(total, t.nnz());
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        if let (Some(first), Some(last)) = (parts.first(), parts.last()) {
            prop_assert_eq!(first.start, 0);
            prop_assert_eq!(last.end, t.nnz());
        }
    }

    #[test]
    fn mttkrp_is_additive_over_segments(t in arb_tensor(), segs in 1usize..6) {
        // MTTKRP(X) == Σ MTTKRP(segment) — the invariant the pipeline
        // relies on when it accumulates per-segment kernels.
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let f = FactorSet::random(sorted.dims(), 4, 7);
        let whole = mttkrp_seq(&sorted, &f, 0);
        let parts = segment::segment_by_nnz(sorted.nnz(), segs);
        let mut acc = Mat::zeros(whole.rows(), whole.cols());
        for s in &parts {
            let piece = sorted.slice_range(s.start, s.end);
            acc.axpy(1.0, &mttkrp_seq(&piece, &f, 0));
        }
        prop_assert!(acc.max_abs_diff(&whole) < 1e-3);
    }

    #[test]
    fn mttkrp_is_linear_in_the_tensor(t in arb_tensor(), alpha in 0.1f32..4.0) {
        let f = FactorSet::random(t.dims(), 4, 9);
        let mut scaled_t = t.clone();
        for v in scaled_t.values_mut() { *v *= alpha; }
        let mut lhs = mttkrp_seq(&t, &f, 1);
        lhs.scale(alpha);
        let rhs = mttkrp_seq(&scaled_t, &f, 1);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2 * alpha.max(1.0));
    }

    #[test]
    fn features_are_finite_and_bounded(t in arb_tensor(), mode in 0usize..3) {
        let feats = TensorFeatures::extract(&t, mode);
        let v = feats.to_vec();
        prop_assert!(v.iter().all(|x| x.is_finite()));
        prop_assert!(feats.slice_ratio > 0.0 && feats.slice_ratio <= 1.0);
        prop_assert!(feats.fiber_ratio > 0.0 && feats.fiber_ratio <= 1.0 + 1e-9);
        prop_assert!(feats.max_nnz_per_slice as usize <= t.nnz());
        prop_assert!(feats.slice_imbalance >= 1.0 - 1e-9);
    }

    #[test]
    fn timeline_is_causal_and_engine_exclusive(
        copies in proptest::collection::vec((1u64..50_000_000, 0usize..4), 1..12)
    ) {
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let streams: Vec<_> = (0..4).map(|_| gpu.create_stream()).collect();
        for (bytes, s) in &copies {
            gpu.h2d(streams[*s], *bytes, "c");
        }
        let t = gpu.synchronize();
        prop_assert!(t.validate().is_ok());
        prop_assert!(t.makespan() >= t.spans.iter().map(|s| s.duration()).fold(0.0, f64::max));
    }

    #[test]
    fn pinv_reconstructs_gram_action(rows in 3usize..12, rank in 1usize..5, seed in any::<u64>()) {
        // For V = GᵀG + I (well-conditioned), V · V† ≈ I.
        use scalfrag::linalg::{gram, matmul, pinv_spd};
        let mut rng = rand::rngs::mock::StepRng::new(seed, 0x9E3779B97F4A7C15);
        let g = Mat::random(rows, rank, &mut rng);
        let mut v = gram(&g);
        for i in 0..rank { v[(i, i)] += 1.0; }
        let prod = matmul(&v, &pinv_spd(&v));
        prop_assert!(prod.max_abs_diff(&Mat::identity(rank)) < 1e-2);
    }

    #[test]
    fn fcoo_round_trip_preserves_dense_form(t in arb_tensor(), mode in 0usize..3, seg in 1usize..128) {
        let fcoo = scalfrag::tensor::FCooTensor::from_coo(&t, mode, seg);
        let mut sorted = t.clone();
        sorted.sort_for_mode(mode);
        prop_assert_eq!(fcoo.to_coo().to_dense(), sorted.to_dense());
        // Partition carry flags are consistent with the start flags.
        for p in 0..fcoo.num_partitions() {
            let r = fcoo.partition_range(p);
            if fcoo.partition_continues(p) {
                prop_assert!(!fcoo.starts_row(r.start));
            }
        }
    }

    #[test]
    fn fcoo_kernel_matches_reference(t in arb_tensor(), seg in 1usize..64) {
        let f = FactorSet::random(t.dims(), 3, 5);
        let fcoo = scalfrag::tensor::FCooTensor::from_coo(&t, 0, seg);
        let out = scalfrag::kernels::AtomicF32Buffer::new(t.dims()[0] as usize * 3);
        scalfrag::kernels::FCooKernel::execute(&fcoo, &f, &out);
        let m = Mat::from_vec(t.dims()[0] as usize, 3, out.to_vec());
        let expect = mttkrp_seq(&t, &f, 0);
        prop_assert!(m.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn spttm_identity_is_a_permuted_copy(t in arb_tensor(), mode in 0usize..3) {
        let u = Mat::identity(t.dims()[mode] as usize);
        let semi = scalfrag::kernels::spttm::spttm_par(&t, &u, mode);
        let mut sorted = t.clone();
        let mut order: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
        order.push(mode);
        sorted.sort_by_order(&order);
        prop_assert_eq!(semi.to_coo().to_dense(), sorted.to_dense());
    }

    #[test]
    fn bcsf_split_is_a_partition(t in arb_tensor(), threshold in 1u32..40) {
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let split = scalfrag::kernels::BcsfKernel::split(&sorted, 0, threshold);
        let mut covered = vec![false; sorted.nnz()];
        for r in split.heavy.iter().chain(split.light_runs.iter()) {
            for e in r.clone() {
                prop_assert!(!covered[e], "entry {e} covered twice");
                covered[e] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn launch_config_sweep_members_always_validate(idx in 0usize..64) {
        let d = DeviceSpec::rtx3090();
        let space = LaunchConfig::sweep_space(&d);
        let cfg = space[idx % space.len()];
        prop_assert!(cfg.validate(&d).is_ok());
    }

    #[test]
    fn sharding_partitions_nnz_exactly(t in arb_tensor(), shards in 1usize..8, mode in 0usize..3) {
        use scalfrag::cluster::{shard_tensor, ShardPolicy};
        let mut sorted = t.clone();
        sorted.sort_for_mode(mode);
        for policy in [ShardPolicy::NnzBalanced, ShardPolicy::SliceAligned] {
            let parts = shard_tensor(&sorted, mode, policy, shards);
            let total: usize = parts.iter().map(|s| s.nnz()).sum();
            prop_assert_eq!(total, t.nnz());
            // Contiguous, gap-free cover of the entry range.
            for w in parts.windows(2) {
                prop_assert_eq!(w[0].range.end, w[1].range.start);
            }
            if let (Some(first), Some(last)) = (parts.first(), parts.last()) {
                prop_assert_eq!(first.range.start, 0);
                prop_assert_eq!(last.range.end, t.nnz());
            }
        }
    }

    #[test]
    fn slice_aligned_shards_never_share_output_rows(t in arb_tensor(), shards in 1usize..8) {
        use scalfrag::cluster::{shard_tensor, ShardPolicy};
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let parts = shard_tensor(&sorted, 0, ShardPolicy::SliceAligned, shards);
        let mut owner = std::collections::HashMap::new();
        for s in &parts {
            let (lo, hi) = s.rows.expect("slice-aligned shards own a row range");
            prop_assert!(lo <= hi);
            for r in lo..=hi {
                prop_assert!(
                    owner.insert(r, s.index).is_none(),
                    "row {r} owned by two shards"
                );
            }
            // Every entry of the shard writes inside its owned range.
            for &i in s.tensor.mode_indices(0) {
                prop_assert!((lo..=hi).contains(&i));
            }
        }
    }
}
