//! Golden bit-stability fingerprints (DESIGN.md §10).
//!
//! Each test pins a digest of a fully-seeded run. Accidental
//! nondeterminism — a HashMap iteration leaking into scheduling order, a
//! wall-clock read, a reduction reassociating — changes the digest and
//! fails with a diff-style message.
//!
//! Two digest families:
//!
//! * `mat_checksum` (FNV-1a over value bits) — stable across toolchains;
//!   a changed constant always means changed numerics.
//! * `ServeReport::fingerprint` / `FaultLog::fingerprint` (SipHash via
//!   `DefaultHasher`) — stable per toolchain. If a *rustc upgrade* (and
//!   nothing else) shifts them, re-pin by running with
//!   `PRINT_FINGERPRINTS=1` and updating the constants; any other cause
//!   is a real regression.

use std::sync::Arc;

use scalfrag::cluster::{execute_cluster_resilient, ClusterOptions};
use scalfrag::faults::mat_checksum;
use scalfrag::prelude::*;
use scalfrag::tensor::gen;

use scalfrag::conformance::{combined_plan_fingerprint, print_or_assert};

// Re-pinned for the batch-fused serving refactor: every dispatch now
// goes through the fused builder, and records carry group bookkeeping
// (group size, batch wait, dispatch-group counters) that the report
// digest deliberately folds.
const GOLDEN_SERVE_FINGERPRINT: u64 = 0xf111_6031_af67_9f0f;
const GOLDEN_FAULT_LOG_FINGERPRINT: u64 = 0xbd60_acb6_58c7_9e45;
const GOLDEN_CLUSTER_OUTPUT_CHECKSUM: u64 = 0xd336_3d55_543a_4baf;
const GOLDEN_PLAN_TRACE_FINGERPRINT: u64 = 0xed33_cf2f_445d_e4d6;
const GOLDEN_BALANCE_PLAN_TRACE_FINGERPRINT: u64 = 0x22fc_902a_17f3_df68;
const GOLDEN_BATCHED_PLAN_TRACE_FINGERPRINT: u64 = 0x4a79_4e71_6d71_1c32;
// Re-pinned when the batch-fused serving builder joined the registry
// (the opt digest deliberately folds every builder, so it shifts on
// registration — previously when the two balance builders joined).
const GOLDEN_OPT_PLAN_TRACE_FINGERPRINT: u64 = 0x2c80_f8f5_d801_5bc1;
const GOLDEN_STREAMING_TRACE_FINGERPRINT: u64 = 0x3d53_ffcf_3f4e_e0c3;

fn serve_workload() -> Vec<MttkrpJob> {
    let dims = [64u32, 48, 32];
    let tensors: Vec<Arc<CooTensor>> = (0..3)
        .map(|i| Arc::new(gen::zipf_slices(&dims, 4_000 + 500 * i as usize, 0.9, 40 + i)))
        .collect();
    let factors = Arc::new(FactorSet::random(&dims, 8, 77));
    (0..6)
        .map(|j| {
            MttkrpJob::new(
                j as u64 + 1,
                if j % 2 == 0 { "tenant-a" } else { "tenant-b" },
                tensors[j % 3].clone(),
                factors.clone(),
                j % 3,
            )
            .at(j as f64 * 1e-3)
        })
        .collect()
}

#[test]
fn serve_report_fingerprint_is_pinned() {
    let run = || {
        ScalFragServer::builder()
            .device(DeviceSpec::rtx3090())
            .train_tiers(vec![8])
            .build()
            .run(serve_workload())
            .fingerprint()
    };
    let a = run();
    assert_eq!(a, run(), "same seeded workload, two fingerprints in one process");
    print_or_assert("serve-report", a, GOLDEN_SERVE_FINGERPRINT);
}

#[test]
fn fault_log_fingerprint_is_pinned() {
    let dims = [96u32, 64, 48];
    let tensor = gen::zipf_slices(&dims, 8_000, 1.0, 51);
    let factors = FactorSet::random(&dims, 8, 52);
    let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
    let opts = ClusterOptions::new(LaunchConfig::new(512, 256), 6);
    let run = || {
        let plan = FaultPlan::seeded_storm(53, 3, 4, 24, true);
        let policy = FaultRecoveryPolicy::retry_reshard()
            .with_retry(RetryPolicy::with_attempts(plan.len() as u32 + 4));
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &tensor,
            &factors,
            0,
            &opts,
            &mut inj,
            &policy,
            ExecMode::Functional,
        );
        assert_eq!(run.failed_segments, 0, "recoverable storm must recover");
        inj.log().fingerprint()
    };
    let a = run();
    assert_eq!(a, run(), "same storm, two fault-log fingerprints in one process");
    print_or_assert("fault-log", a, GOLDEN_FAULT_LOG_FINGERPRINT);
}

/// Every registered plan builder, lowered over the pinned tensor and
/// interpreted in dry mode, must schedule the identical ops at the
/// identical simulated times. The digest folds each builder's name and
/// its [`PlanTrace::fingerprint`] (FNV-1a over placement, labels and
/// span bits — toolchain-independent).
#[test]
fn plan_trace_fingerprint_is_pinned() {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    // Builders added after this digest was pinned (the streamer, the two
    // balance arms, the batch-fused serving builder) have their own
    // goldens below; folding them in here would shift the combined
    // constant for the pre-existing builders.
    let combined = || {
        combined_plan_fingerprint(
            &tensor,
            &factors,
            0,
            |name| name != "oom-stream" && !name.starts_with("balance-") && name != "serve-batched",
            |p| p,
        )
    };
    let a = combined();
    assert_eq!(a, combined(), "same plans, two trace digests in one process");
    print_or_assert("plan-trace", a, GOLDEN_PLAN_TRACE_FINGERPRINT);
}

/// The two balance-arm builders (`balance-segscan`, `balance-flycoo`),
/// lowered over the pinned tensor and interpreted dry, must schedule
/// deterministically — the plan-level determinism gate for the
/// load-balanced segmented scan and the FLYCOO mode-agnostic kernel.
#[test]
fn balance_plan_trace_fingerprint_is_pinned() {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    let combined = || {
        combined_plan_fingerprint(&tensor, &factors, 0, |name| name.starts_with("balance-"), |p| p)
    };
    let a = combined();
    assert_eq!(a, combined(), "same balance plans, two trace digests in one process");
    print_or_assert("balance-plan-trace", a, GOLDEN_BALANCE_PLAN_TRACE_FINGERPRINT);
}

/// The batch-fused serving builder (`serve-batched`), lowered over the
/// pinned tensor as a three-job fused batch and interpreted dry, must
/// schedule deterministically — one shared factor upload, round-robin
/// per-job H2D/launch fan-out, per-job D2H on the dedicated return
/// stream. This is the pinned golden trace the batch-fused serving
/// refactor is held to: group-size-1 dispatch in `serve::scheduler` goes
/// through exactly this builder, so the pin covers the solo path too.
#[test]
fn batched_plan_trace_fingerprint_is_pinned() {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    let combined =
        || combined_plan_fingerprint(&tensor, &factors, 0, |name| name == "serve-batched", |p| p);
    let a = combined();
    assert_eq!(a, combined(), "same batched plan, two trace digests in one process");
    print_or_assert("batched-plan-trace", a, GOLDEN_BATCHED_PLAN_TRACE_FINGERPRINT);
}

/// Every registered builder's plan, run through the *default optimizer
/// pipeline* and interpreted dry, must also schedule deterministically —
/// the optimized twin of the raw pin above, covering all eleven builders
/// (the streamer and both balance arms included: the streamer's
/// evict/prefetch loop is exactly what the memory-op passes canonicalize).
#[test]
fn optimized_plan_trace_fingerprint_is_pinned() {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    let combined = || {
        combined_plan_fingerprint(
            &tensor,
            &factors,
            0,
            |_| true,
            |p| {
                let opt = scalfrag::opt::optimize_default(&p);
                assert!(
                    !opt.meta.optimizer.is_empty(),
                    "{}: the optimized plan must carry its pass provenance",
                    p.name
                );
                opt
            },
        )
    };
    let a = combined();
    assert_eq!(a, combined(), "same optimized plans, two trace digests in one process");
    print_or_assert("opt-plan-trace", a, GOLDEN_OPT_PLAN_TRACE_FINGERPRINT);
}

/// The out-of-core streaming builder, interpreted dry over the pinned
/// tensor under its registry budget, must schedule the identical
/// Prefetch/Launch/Evict ops at identical simulated times — the
/// acceptance gate for the streaming subsystem's determinism.
#[test]
fn streaming_plan_trace_fingerprint_is_pinned() {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    let digest = || {
        let plan = scalfrag::oom::registry_plan(&tensor, &factors, 0);
        let outcome = scalfrag::exec::run_plan(&plan, ExecMode::Dry);
        assert!(outcome.mem[0].evictions > 0, "the registry budget must force evictions");
        assert!(
            outcome.mem[0].peak_bytes <= scalfrag::oom::registry_budget(&tensor, &factors, 0),
            "peak live bytes must stay within the budget"
        );
        outcome.trace.fingerprint()
    };
    let a = digest();
    assert_eq!(a, digest(), "same streaming plan, two trace digests in one process");
    print_or_assert("streaming-trace", a, GOLDEN_STREAMING_TRACE_FINGERPRINT);
}

#[test]
fn cluster_shard_order_reduction_checksum_is_pinned() {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    // Pinned shard count ⇒ identical fold order ⇒ one checksum across
    // device counts. FNV-1a over value bits: toolchain-independent.
    let mut sums = Vec::new();
    for devices in [1usize, 2, 3] {
        let report = ClusterScalFrag::builder()
            .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), devices))
            .fixed_config(LaunchConfig::new(512, 256))
            .shards(6)
            .build()
            .mttkrp(&tensor, &factors, 0);
        sums.push(mat_checksum(&report.output));
    }
    assert_eq!(sums[0], sums[1], "1-device vs 2-device outputs differ");
    assert_eq!(sums[0], sums[2], "1-device vs 3-device outputs differ");
    print_or_assert("cluster-output", sums[0], GOLDEN_CLUSTER_OUTPUT_CHECKSUM);

    // The same golden must hold at every host-pool size: the kernels
    // fan out across the work-stealing pool, but submission-order
    // partial folding keeps the add sequence — the checksum hashes
    // value bits, so this pins the whole determinism discipline.
    scalfrag::host::check::assert_thread_invariant("cluster-output-vs-pool", || {
        let report = ClusterScalFrag::builder()
            .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2))
            .fixed_config(LaunchConfig::new(512, 256))
            .shards(6)
            .build()
            .mttkrp(&tensor, &factors, 0);
        let sum = mat_checksum(&report.output);
        assert_eq!(sum, GOLDEN_CLUSTER_OUTPUT_CHECKSUM, "pool moved the pinned output bits");
        sum
    });
}
