//! Offline stand-in for `parking_lot`, backed by [`std::sync`].
//!
//! Provides the poison-free `Mutex`/`RwLock` API the workspace uses.
//! Poisoning is neutralised by recovering the inner guard — matching
//! parking_lot, which has no poisoning at all.

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
