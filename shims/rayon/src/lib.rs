//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the parallel-iterator API surface the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks`, `.chunks(n)` — executed **sequentially in
//! submission order**. That trades wall-clock parallelism for a property
//! the simulator stack values more: numeric results are bit-deterministic
//! and, by construction, invariant to any notion of thread count (there is
//! exactly one). All downstream combinators (`map`, `for_each`, `sum`,
//! `collect`, …) come from [`std::iter::Iterator`], which [`ParIter`]
//! implements.
//!
//! With the `parallel` feature (the workspace default since the
//! `scalfrag-host` pool landed), [`current_num_threads`] forwards to the
//! real work-stealing pool's effective count — so thread-count *queries*
//! see reality — while the `ParIter` surface stays sequential: it is the
//! reference execution order the parallel primitives are required to
//! reproduce bit-for-bit. Hot paths that want actual parallelism call
//! `scalfrag_host::par_map` directly.

/// Number of worker threads parallel primitives will use. Without the
/// `parallel` feature this is the sequential shim's constant 1; with it,
/// the scalfrag-host pool's effective count (override stack → env →
/// available parallelism; 1 inside a pool worker).
pub fn current_num_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        scalfrag_host::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Sequential stand-in for rayon's `ParallelIterator`: a thin wrapper over
/// a standard iterator that adds the rayon-specific adapters the workspace
/// uses (`chunks`, `with_min_len`).
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// Groups items into `Vec`s of at most `size` (rayon's
    /// `IndexedParallelIterator::chunks`).
    pub fn chunks(self, size: usize) -> Chunks<I> {
        assert!(size > 0, "chunk size must be positive");
        Chunks { inner: self.0, size }
    }

    /// Work-splitting hint; a no-op in the sequential shim.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Work-splitting hint; a no-op in the sequential shim.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

/// Iterator of `Vec` chunks produced by [`ParIter::chunks`].
pub struct Chunks<I: Iterator> {
    inner: I,
    size: usize,
}

impl<I: Iterator> Iterator for Chunks<I> {
    type Item = Vec<I::Item>;

    fn next(&mut self) -> Option<Vec<I::Item>> {
        let mut chunk = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            match self.inner.next() {
                Some(x) => chunk.push(x),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// `into_par_iter()` for every `IntoIterator` (ranges, `Vec`, …).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Converts into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// `par_iter()` / `par_chunks()` on slices (and, via deref, `Vec`).
pub trait ParallelSlice<T> {
    /// Borrowing (sequential) "parallel" iterator over the elements.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;

    /// Borrowing iterator over `chunk_size`-sized sub-slices.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable `par_iter_mut()` / `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T> {
    /// Mutably borrowing (sequential) "parallel" iterator.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;

    /// Mutably borrowing iterator over `chunk_size`-sized sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// Glob-importable traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_behaves_like_iter() {
        let sum: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 9900);
    }

    #[test]
    fn chunks_groups_and_preserves_order() {
        let chunks: Vec<Vec<usize>> = (0..7usize).into_par_iter().chunks(3).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn slice_par_iter_and_par_chunks() {
        let v = [1, 2, 3, 4, 5];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 15);
        let c: Vec<&[i32]> = v.par_chunks(2).collect();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn for_each_runs_in_order() {
        let mut log = Vec::new();
        // Sequential shim: side effects land in submission order.
        (0..5usize).into_par_iter().for_each(|i| log.push(i));
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }

    #[cfg(not(feature = "parallel"))]
    #[test]
    fn one_thread_reported() {
        assert_eq!(super::current_num_threads(), 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn thread_count_forwards_to_the_host_pool() {
        scalfrag_host::with_threads(4, || {
            assert_eq!(super::current_num_threads(), 4);
        });
        scalfrag_host::with_threads(1, || {
            assert_eq!(super::current_num_threads(), 1);
        });
    }
}
