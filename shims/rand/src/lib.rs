//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API surface it actually uses* as a dependency-free shim:
//! [`Rng`]/[`RngCore`]/[`SeedableRng`], [`rngs::StdRng`] (xoshiro256**
//! seeded via SplitMix64) and [`rngs::mock::StepRng`]. Streams differ from
//! upstream `rand` bit-for-bit, but every generator is deterministic in its
//! seed, which is the only property the workspace relies on (synthetic
//! tensors, factor initialisation, reproducible tests).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a standard distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one standard-distributed sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // High 24 bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width range: every value is admissible.
                    return (rng.next_u64() as u64) as $t;
                }
                start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    /// Not the upstream `StdRng` stream, but a high-quality deterministic
    /// generator with the same construction API.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-progression generator: yields `initial`,
        /// `initial + increment`, … — mirrors `rand::rngs::mock::StepRng`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial` advancing by
            /// `increment` per sample.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self { v: initial, step: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.step);
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should spread over [0, 1)");
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(5, 3);
        assert_eq!(r.next_u64(), 5);
        assert_eq!(r.next_u64(), 8);
        assert_eq!(r.next_u64(), 11);
    }

    #[test]
    fn works_through_mut_references() {
        fn sample(rng: &mut impl Rng) -> f32 {
            rng.gen::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        assert_ne!(a, b);
    }
}
