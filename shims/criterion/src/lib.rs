//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` harness contract and the
//! `Criterion` → `BenchmarkGroup` → `Bencher` call surface, but replaces
//! statistical sampling with a plain fixed-count timing loop that prints
//! one mean-per-iteration line per benchmark. Good enough to keep the
//! `[[bench]]` targets compiling, runnable, and comparable run-to-run
//! without a registry dependency.

use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Identifier for one benchmark: a function name plus a parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `"<name>/<parameter>"`, mirroring upstream display form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times one closure over a fixed number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times, accumulating total wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(group: &str, id: &BenchmarkId, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    let label = if group.is_empty() { id.id.clone() } else { format!("{group}/{}", id.id) };
    println!("{label:<48} {iters:>4} iters   mean {}", fmt_duration(mean));
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the iteration count used for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup { name, sample_size: self.sample_size, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<ID: Into<BenchmarkId>>(
        &mut self,
        id: ID,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n as u64;
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<ID: Into<BenchmarkId>>(
        &mut self,
        id: ID,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Times `f` under `id`, passing `input` by reference.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I: ?Sized>(
        &mut self,
        id: ID,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group (prints a trailing newline).
    pub fn finish(self) {
        println!();
    }
}

/// Bundles benchmark functions into a runnable group function. Supports
/// both the positional form and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` invoking each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::new("named", 7), |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("with_input", "x"), &21, |b, &x| b.iter(|| x * 2));
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(3) + 1));
    }

    criterion_group!(positional, sample_target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = sample_target, sample_target
    }

    #[test]
    fn groups_run_to_completion() {
        positional();
        configured();
    }

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| std::hint::black_box(42u64).wrapping_mul(3));
        assert!(b.elapsed >= Duration::ZERO);
    }
}
