//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `any` / collection
//! strategies, `ProptestConfig`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Instead of upstream's
//! shrinking runner, each property runs `cases` times against a
//! generator seeded from the test's name — fully deterministic across
//! runs and machines, so failures are always reproducible. No shrinking:
//! a failing case reports its case index and panics via `assert!`.

use std::ops::Range;

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic case generator (SplitMix64) used by the [`proptest!`]
/// runner; seeded from the property's name so every test has an
/// independent, reproducible stream.
pub mod test_runner {
    /// SplitMix64 generator behind every strategy draw.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// A recipe for producing random values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty, $shift:expr, $den:expr);*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = (rng.next_u64() >> $shift) as $t / $den;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, 40, (1u64 << 24) as f32; f64, 11, (1u64 << 53) as f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element`-generated items with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample from empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against `config.cases`
/// deterministically generated argument tuples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_properties! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)*) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)*);
                let __run = move || { $body };
                if let Err(payload) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run))
                {
                    eprintln!(
                        "proptest shim: property `{}` failed at case {}/{}",
                        stringify!($name), __case + 1, __config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
}

/// Glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = super::test_runner::TestRng::from_name("unit");
        for _ in 0..500 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.5f32..2.0).prop_map(|v| v * 2.0).generate(&mut rng);
            assert!((1.0..4.0).contains(&y));
            let (a, b) = ((1usize..4), any::<u64>()).generate(&mut rng);
            assert!((1..4).contains(&a));
            let _ = b;
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = super::test_runner::TestRng::from_name("unit_vec");
        let strat = super::collection::vec((0u32..5, 1u64..9), 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn generator_is_deterministic_per_name() {
        let mut a = super::test_runner::TestRng::from_name("same");
        let mut b = super::test_runner::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::test_runner::TestRng::from_name("other");
        assert_ne!(super::test_runner::TestRng::from_name("same").next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_runs_and_passes(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn macro_form_without_trailing_comma(x in 1usize..8) {
            prop_assert!(x >= 1);
        }
    }
}
