#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests, and a compile
# check of every facade example. Run from the repo root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> compile-check examples"
cargo build --release --examples

echo "==> serving-layer smoke test (batch fusion >=1.5x + snapshot warm start; writes results/BENCH_serve.json)"
cargo run --release -q -p scalfrag-bench --bin serve_load -- --smoke
test -s results/BENCH_serve.json || { echo "BENCH_serve.json missing"; exit 1; }

echo "==> fault-storm smoke test"
cargo run --release -q -p scalfrag-bench --bin fault_storm -- --smoke

echo "==> conformance smoke test (differential oracle + race checker self-test)"
cargo run --release -q -p scalfrag-bench --bin conformance -- --smoke

echo "==> plan-dump smoke test (every plan builder lowers to a stable non-empty trace)"
cargo run --release -q -p scalfrag-bench --bin plan_dump -- --smoke

echo "==> optimizer smoke test (nonzero op reduction + bit-identical output; writes results/BENCH_opt.json)"
cargo run --release -q -p scalfrag-bench --bin opt_bench -- --smoke

echo "==> out-of-core smoke test (1B-nnz preset streams at footprint/8; writes results/BENCH_oom_stream.json)"
cargo run --release -q -p scalfrag-bench --bin oom_stream -- --smoke

echo "==> balance-arm smoke test (predictor picks balanced on the skewed preset at >=1.2x; writes results/BENCH_balance.json)"
cargo run --release -q -p scalfrag-bench --bin balance_bench -- --smoke

echo "==> host-pool smoke test (bit-identical at pool sizes 1/2/4/8; >=1.5x corpus speedup at 4 threads when >=4 cores; writes results/BENCH_host.json)"
cargo run --release -q -p scalfrag-bench --bin host_bench -- --smoke
test -s results/BENCH_host.json || { echo "BENCH_host.json missing"; exit 1; }

echo "CI green."
